"""Shared experiment pipeline.

The pipeline mirrors Figure 2 of the paper: characterize the device (or,
for experiments isolating scheduling effects, read the ground truth as a
perfect characterization), schedule the workload with one of the three
policies, execute it on the noisy backend, mitigate readout, and score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.core.characterization.campaign import (
    CampaignOutcome,
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.core.characterization.report import CrosstalkReport
from repro.core.scheduling.baselines import par_sched, serial_sched
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.device.backend import NoisyBackend
from repro.device.device import Device
from repro.metrics.readout import mitigate_distribution
from repro.metrics.tomography import bell_state_vector
from repro.rb.executor import RBConfig
from repro.workloads.swap import SwapBenchmark

SCHEDULERS = ("SerialSched", "ParSched", "XtalkSched")


@dataclass
class ExperimentConfig:
    """Execution sizing shared by the figure drivers.

    The paper's shot counts (9216 for tomography, 8192 for distributions)
    are kept; trajectory counts trade simulation accuracy for wall time.
    """

    shots: int = 4096
    trajectories: int = 160
    omega: float = 0.5
    mitigate_readout: bool = True
    #: Sample finite shots (paper-faithful) instead of using the exact
    #: trajectory-averaged distribution.  Benches default to exact
    #: distributions so scheduler differences are not buried in shot noise.
    use_sampled_counts: bool = False
    seed: int = 7

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        return cls(shots=512, trajectories=32)

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        return cls(shots=8192, trajectories=400, use_sampled_counts=True)


# ----------------------------------------------------------------------
# characterization inputs
# ----------------------------------------------------------------------
def ground_truth_report(device: Device, day: int = 0) -> CrosstalkReport:
    """A perfect characterization: the ground truth, read as if measured.

    Used by scheduling experiments to isolate scheduler quality from RB
    measurement noise (the paper's scheduler likewise consumes the best
    characterization available).  Only 1-hop conditional rates are
    recorded, mirroring what a real campaign would measure.
    """
    cal = device.calibration(day)
    report = CrosstalkReport(day=day)
    for edge in device.coupling.edges:
        report.record_independent(edge, cal.cnot_error_of(*edge))
    for pair in device.coupling.one_hop_gate_pairs():
        a, b = sorted(pair)
        report.record_conditional(a, b, device.crosstalk.conditional_error(a, b, cal, day))
        report.record_conditional(b, a, device.crosstalk.conditional_error(b, a, cal, day))
    return report


_report_cache: Dict[Tuple[str, int, int], CampaignOutcome] = {}


def characterized_report(device: Device, day: int = 0,
                         rb_config: Optional[RBConfig] = None,
                         seed: int = 3, use_cache: bool = True) -> CampaignOutcome:
    """Run (and cache) a 1-hop bin-packed SRB campaign on the device."""
    key = (device.name, day, seed)
    if use_cache and key in _report_cache:
        return _report_cache[key]
    campaign = CharacterizationCampaign(device, rb_config=rb_config, seed=seed)
    outcome = campaign.run(CharacterizationPolicy.ONE_HOP_PACKED, day=day)
    if use_cache:
        _report_cache[key] = outcome
    return outcome


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
def prepare_circuit(scheduler: str, circuit: QuantumCircuit, device: Device,
                    report: CrosstalkReport, omega: float = 0.5,
                    day: int = 0) -> QuantumCircuit:
    """Apply one of the Table 1 scheduling policies."""
    if scheduler == "ParSched":
        return par_sched(circuit)
    if scheduler == "SerialSched":
        return serial_sched(circuit)
    if scheduler == "XtalkSched":
        xs = XtalkScheduler(device.calibration(day), report, omega=omega)
        return xs.schedule(circuit).circuit
    raise ValueError(f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}")


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def run_distribution(backend: NoisyBackend, circuit: QuantumCircuit,
                     config: ExperimentConfig) -> np.ndarray:
    """Execute and return the (optionally mitigated) clbit distribution."""
    result = backend.run(
        circuit, shots=config.shots, trajectories=config.trajectories,
        readout_error=True, seed=config.seed,
    )
    if config.use_sampled_counts:
        total = sum(result.counts.values())
        probs = np.zeros(len(result.probabilities))
        for bits, c in result.counts.items():
            probs[int(bits, 2)] = c / total
    else:
        probs = result.probabilities
    if config.mitigate_readout:
        readout = backend.device.readout_model(backend.day)
        confusion = readout.confusion_matrix(result.measured_qubits)
        probs = mitigate_distribution(probs, confusion)
    return probs


def distribution_as_dict(probs: np.ndarray) -> Dict[str, float]:
    n = int(round(np.log2(len(probs))))
    return {format(i, f"0{n}b"): float(p) for i, p in enumerate(probs) if p > 0}


# ----------------------------------------------------------------------
# SWAP-circuit scoring
# ----------------------------------------------------------------------
def _insert_rotations_before_measures(circuit: QuantumCircuit,
                                      rotations: Sequence) -> QuantumCircuit:
    """Insert instructions immediately before the first measurement.

    Scheduled circuits keep their measurements last (simultaneous readout),
    so basis rotations inserted there follow every gate on the measured
    qubits.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    inserted = False
    for instr in circuit:
        if instr.is_measure and not inserted:
            for rot in rotations:
                out.append(rot)
            inserted = True
        out.append(instr)
    if not inserted:
        raise ValueError("circuit has no measurements")
    return out


def tomography_error(backend: NoisyBackend, prepared: QuantumCircuit,
                     qubit_pair: Tuple[int, int], config: ExperimentConfig,
                     target: Optional[np.ndarray] = None) -> float:
    """Tomography error of an already-scheduled circuit.

    Builds the 9 tomography variants by inserting basis rotations ahead of
    the measurements (the two-qubit structure — and hence any scheduling
    decisions — are identical across settings), executes each, and
    reconstructs the two-qubit state.
    """
    from repro.metrics.tomography import (
        _basis_rotation,
        density_from_expectations,
        expectations_from_distributions,
        state_fidelity,
        tomography_settings,
    )

    qa, qb = qubit_pair
    dists = {}
    for setting in tomography_settings():
        rot = QuantumCircuit(backend.device.num_qubits)
        _basis_rotation(rot, qa, setting[0])
        _basis_rotation(rot, qb, setting[1])
        variant = _insert_rotations_before_measures(prepared, rot.instructions)
        dists[setting] = run_distribution(backend, variant, config)

    rho = density_from_expectations(expectations_from_distributions(dists))
    target = target if target is not None else bell_state_vector()
    return 1.0 - state_fidelity(rho, target)


def swap_error_rate(backend: NoisyBackend, bench: SwapBenchmark, scheduler: str,
                    report: CrosstalkReport, config: ExperimentConfig,
                    omega: Optional[float] = None) -> Tuple[float, float]:
    """Tomography error rate and program duration for one SWAP benchmark."""
    omega = config.omega if omega is None else omega
    prepared = prepare_circuit(
        scheduler, bench.circuit, backend.device, report, omega=omega,
        day=backend.day,
    )
    duration = backend.schedule_of(prepared).makespan()
    error = tomography_error(backend, prepared, bench.meeting_pair, config)
    return error, duration
