"""Figure 4: daily variation of crosstalk noise on IBMQ Poughkeepsie.

The paper tracks two high-crosstalk pairs over six days of SRB and finds:
conditional error rates stay well above the independent rates every day;
they vary up to 2x (3x across devices); and the *set* of high pairs stays
stable.  This driver re-measures the Figure 4 pairs daily against the
drifting ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.device import Device
from repro.device.presets import ibmq_poughkeepsie
from repro.device.topology import Edge
from repro.rb.executor import RBConfig, RBExecutor

#: The pairs shown in Figure 4.
TRACKED_PAIRS: Tuple[Tuple[Edge, Edge], ...] = (
    ((13, 14), (18, 19)),
    ((10, 15), (11, 12)),
)


@dataclass
class Fig4Row:
    day: int
    #: measured conditional rates keyed "E(a|b)" style
    conditional: Dict[str, float]
    independent: Dict[str, float]


def run_fig4(device: Optional[Device] = None, days: int = 6,
             rb_config: Optional[RBConfig] = None, seed: int = 5) -> List[Fig4Row]:
    device = device or ibmq_poughkeepsie()
    rb_config = rb_config or RBConfig(shots=1024)
    rows = []
    for day in range(days):
        executor = RBExecutor(device, day=day, config=rb_config, seed=seed + day)
        conditional: Dict[str, float] = {}
        independent: Dict[str, float] = {}
        for (a, b) in TRACKED_PAIRS:
            pair_result = executor.run_pair(a, b)
            conditional[f"E{a}|{b}"] = pair_result.error_rate(a)
            conditional[f"E{b}|{a}"] = pair_result.error_rate(b)
            for edge in (a, b):
                key = f"E{edge}"
                if key not in independent:
                    solo = executor.run_independent(edge)
                    independent[key] = solo.error_rate(edge)
        rows.append(Fig4Row(day=day, conditional=conditional, independent=independent))
    return rows


@dataclass
class Fig4Summary:
    max_conditional_variation: float   # max over series of (max/min)
    conditional_above_independent_every_day: bool
    stable_high_pairs: bool


def summarize(rows: Sequence[Fig4Row], high_ratio: float = 3.0) -> Fig4Summary:
    series: Dict[str, List[float]] = {}
    for row in rows:
        for key, value in row.conditional.items():
            series.setdefault(key, []).append(value)
    variation = max(
        (max(vals) / max(min(vals), 1e-9)) for vals in series.values()
    )
    above = True
    stable = True
    for row in rows:
        for (a, b) in TRACKED_PAIRS:
            cond = row.conditional[f"E{a}|{b}"]
            indep = row.independent[f"E{a}"]
            if cond <= indep:
                above = False
            if cond <= high_ratio * indep and \
                    row.conditional[f"E{b}|{a}"] <= high_ratio * row.independent[f"E{b}"]:
                stable = False
    return Fig4Summary(variation, above, stable)


def fig4_scorecard(rows: Sequence[Fig4Row], high_ratio: float = 3.0):
    """Score the drift experiment against the planted high pairs.

    Per day, a tracked pair counts as *detected* when either direction
    clears the paper's ``E(gi|gj) > 3 E(gi)`` criterion; the ground truth
    is :data:`TRACKED_PAIRS` itself (both are planted high-crosstalk
    pairs of the Poughkeepsie model, drifting but high every day).
    Returns the :func:`repro.obs.scorecard.drift_scorecard` — pooled
    recall/precision over every (day, pair) decision plus the
    drift-tracking lag (longest streak of days a planted pair went
    undetected).
    """
    from repro.obs.events import current_run_id
    from repro.obs.scorecard import DriftDay, drift_scorecard

    days = []
    for row in rows:
        detected = []
        for (a, b) in TRACKED_PAIRS:
            hit = (
                row.conditional[f"E{a}|{b}"]
                > high_ratio * row.independent[f"E{a}"]
                or row.conditional[f"E{b}|{a}"]
                > high_ratio * row.independent[f"E{b}"]
            )
            if hit:
                detected.append((a, b))
        days.append(DriftDay.build(row.day, detected, TRACKED_PAIRS))
    summary = summarize(rows, high_ratio=high_ratio)
    return drift_scorecard(
        "fig4_daily_drift", days, run_id=current_run_id(),
        extra_metrics={
            "max_conditional_variation": summary.max_conditional_variation,
        },
    )


def format_table(rows: Sequence[Fig4Row]) -> str:
    keys = sorted(rows[0].conditional) + sorted(rows[0].independent)
    header = "day  " + "  ".join(f"{k:>22s}" for k in keys)
    lines = ["Figure 4: daily crosstalk drift on IBMQ Poughkeepsie", header]
    for row in rows:
        values = {**row.conditional, **row.independent}
        lines.append(
            f"{row.day:3d}  " + "  ".join(f"{values[k]:22.4f}" for k in keys)
        )
    summary = summarize(rows)
    lines.append(
        f"\nmax day-over-day conditional variation: "
        f"{summary.max_conditional_variation:.1f}x (paper: up to 2x on this "
        f"machine, 3x across devices)"
    )
    lines.append(
        f"conditional > independent every day: "
        f"{summary.conditional_above_independent_every_day}"
    )
    lines.append(f"high-pair set stable across days: {summary.stable_high_pairs}")
    return "\n".join(lines)


def run_fig4_fleet(device: Optional[Device] = None, days: int = 6,
                   rb_config: Optional[RBConfig] = None, seed: int = 5,
                   workers: Optional[int] = None):
    """Figure 4 as a single-device fleet: the drift study run by the
    online Opt-3 service instead of a hand-rolled daily loop.

    A :class:`~repro.fleet.controller.FleetController` over just
    Poughkeepsie publishes one
    :class:`~repro.fleet.epoch.CalibrationEpoch` per day — day 0 a full
    packed 1-hop characterization, every later day a ``HIGH_ONLY``
    refresh against the prior epoch (the paper's Opt 3) — so the
    published epoch sequence *is* the Figure 4 drift track, with the
    same supervision, checkpointing, and observability as a real fleet.
    Returns the :class:`~repro.fleet.controller.FleetOutcome`; grade it
    with ``outcome.scorecard([device])``.
    """
    from repro.fleet.controller import FleetController

    device = device or ibmq_poughkeepsie()
    rb_config = rb_config or RBConfig(lengths=(2, 4, 8), num_sequences=2)
    controller = FleetController(
        [device], rb_config=rb_config, seed=seed, workers=workers,
    )
    return controller.run(days)


def main() -> List[Fig4Row]:
    rows = run_fig4()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
