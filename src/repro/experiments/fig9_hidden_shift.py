"""Figure 9: Hidden Shift sensitivity to ω, with/without redundant CNOTs.

The paper's finding: the plain Hidden Shift benchmark (whose CNOT layers
barely overlap) only benefits from ω = 1; the redundant-CNOT variant
(maximally crosstalk-susceptible) improves over ω = 0 for any
ω in [0.2, 0.5], with best-case gains up to 3x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.backend import NoisyBackend
from repro.device.device import Device
from repro.device.presets import ibmq_poughkeepsie
from repro.experiments.common import (
    ExperimentConfig,
    distribution_as_dict,
    ground_truth_report,
    prepare_circuit,
    run_distribution,
)
from repro.metrics.distributions import success_probability
from repro.workloads.hidden_shift import expected_output, hidden_shift_on_region
from repro.workloads.qaoa import QAOA_REGIONS

DEFAULT_OMEGAS: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)
#: The same four crosstalk-prone regions as Figure 8/9.
HS_REGIONS = QAOA_REGIONS


@dataclass
class Fig9Row:
    region: Tuple[int, ...]
    redundant: bool
    omega: float
    error_rate: float  # 1 - P(correct shift)


def run_fig9(device: Optional[Device] = None,
             config: Optional[ExperimentConfig] = None,
             omegas: Sequence[float] = DEFAULT_OMEGAS,
             regions: Sequence[Sequence[int]] = HS_REGIONS,
             shift: str = "1010") -> List[Fig9Row]:
    device = device or ibmq_poughkeepsie()
    config = config or ExperimentConfig()
    report = ground_truth_report(device)
    backend = NoisyBackend(device)
    expected = expected_output(shift)

    rows: List[Fig9Row] = []
    for redundant in (False, True):
        for region in regions:
            circuit = hidden_shift_on_region(
                device.coupling, region, shift=shift, redundant=redundant
            )
            for omega in omegas:
                prepared = prepare_circuit(
                    "XtalkSched", circuit, device, report, omega=omega
                )
                probs = run_distribution(backend, prepared, config)
                success = success_probability(distribution_as_dict(probs), expected)
                rows.append(
                    Fig9Row(tuple(region), redundant, omega, 1.0 - success)
                )
    return rows


@dataclass
class Fig9Summary:
    #: redundant variant: regions where mid-range omega (0.2-0.5) beats w=0
    redundant_midrange_wins: int
    #: plain variant: regions where only w=1 beats w=0 among tested omegas
    plain_needs_omega_one: int
    best_redundant_improvement: float
    regions: int


def summarize(rows: Sequence[Fig9Row]) -> Fig9Summary:
    regions = sorted({r.region for r in rows})
    red_wins = 0
    plain_one = 0
    best_gain = 0.0
    for region in regions:
        plain = {r.omega: r.error_rate for r in rows
                 if r.region == region and not r.redundant}
        red = {r.omega: r.error_rate for r in rows
               if r.region == region and r.redundant}
        base_red = red[0.0]
        mid = [red[w] for w in red if 0.2 <= w <= 0.5]
        if mid and all(m < base_red for m in mid):
            red_wins += 1
        if mid:
            best_gain = max(best_gain, base_red / max(min(mid), 1e-6))
        base_plain = plain[0.0]
        interior_beats = any(
            plain[w] < base_plain - 0.01 for w in plain if 0.0 < w < 1.0
        )
        if plain[1.0] <= base_plain and not interior_beats:
            plain_one += 1
    return Fig9Summary(red_wins, plain_one, best_gain, len(regions))


def format_table(rows: Sequence[Fig9Row]) -> str:
    regions = sorted({r.region for r in rows})
    omegas = sorted({r.omega for r in rows})
    lines = ["Figure 9: Hidden Shift error rate vs omega (lower is better)"]
    for redundant in (False, True):
        label = "redundant CNOTs" if redundant else "no redundant CNOTs"
        lines.append(f"\n({'b' if redundant else 'a'}) {label}")
        lines.append("omega  " + "  ".join(f"{str(r):>18s}" for r in regions))
        table = {
            (r.region, r.omega): r.error_rate
            for r in rows if r.redundant == redundant
        }
        for omega in omegas:
            lines.append(
                f"{omega:5.2f}  "
                + "  ".join(f"{table[(region, omega)]:18.3f}" for region in regions)
            )
    s = summarize(rows)
    lines.append(
        f"\nredundant: mid-range omega (0.2-0.5) beats omega=0 on "
        f"{s.redundant_midrange_wins}/{s.regions} regions; best improvement "
        f"{s.best_redundant_improvement:.2f}x (paper: up to 3x)"
    )
    lines.append(
        f"plain: omega=1-only improvement on {s.plain_needs_omega_one}/{s.regions} "
        f"regions (paper: only omega=1 beats omega=0)"
    )
    return "\n".join(lines)


def main() -> List[Fig9Row]:
    rows = run_fig9()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
