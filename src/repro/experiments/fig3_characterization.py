"""Figure 3: crosstalk maps of the three devices from all-pairs SRB.

The paper performs SRB on every simultaneously-drivable CNOT pair and marks
pairs with ``E(gi|gj) > 3 E(gi)`` as high crosstalk, finding (i) few such
pairs (5 on Poughkeepsie), and (ii) all of them at 1-hop separation.

This driver runs the measurement campaign against the simulated devices and
compares the detected pair set with the planted ground truth.  Running
genuinely all pairs is slow at full statistics, so by default the
measurement set is the 1-hop pairs plus a sample of longer-range pairs
(which the ground truth makes crosstalk-free by construction — the paper's
devices behave the same way); ``all_pairs=True`` restores the full sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.device.device import Device
from repro.device.presets import all_devices
from repro.device.topology import Edge
from repro.rb.executor import RBConfig


@dataclass
class Fig3Row:
    device: str
    detected_pairs: Tuple[Tuple[Edge, Edge], ...]
    planted_pairs: Tuple[Tuple[Edge, Edge], ...]
    max_degradation: float
    all_detected_at_one_hop: bool
    true_positives: int
    false_positives: int
    false_negatives: int


def _as_sorted_pairs(pairs: Sequence[FrozenSet[Edge]]) -> Tuple[Tuple[Edge, Edge], ...]:
    return tuple(tuple(sorted(p)) for p in sorted(pairs, key=sorted))


def run_fig3(devices: Optional[Sequence[Device]] = None,
             rb_config: Optional[RBConfig] = None,
             all_pairs: bool = False, seed: int = 3) -> List[Fig3Row]:
    devices = list(devices) if devices is not None else list(all_devices())
    rb_config = rb_config or RBConfig(shots=1024)
    rows = []
    for device in devices:
        campaign = CharacterizationCampaign(device, rb_config=rb_config, seed=seed)
        policy = (CharacterizationPolicy.ALL_PAIRS if all_pairs
                  else CharacterizationPolicy.ONE_HOP)
        outcome = campaign.run(policy)
        report = outcome.report
        detected = set(report.high_pairs())
        planted = set(device.true_high_pairs())
        max_deg = 0.0
        for (a, b) in report.conditional:
            max_deg = max(max_deg, report.ratio(a, b))
        one_hop = all(
            device.coupling.gate_distance(*tuple(p)) == 1 for p in detected
        )
        rows.append(
            Fig3Row(
                device=device.name,
                detected_pairs=_as_sorted_pairs(detected),
                planted_pairs=_as_sorted_pairs(planted),
                max_degradation=max_deg,
                all_detected_at_one_hop=one_hop,
                true_positives=len(detected & planted),
                false_positives=len(detected - planted),
                false_negatives=len(planted - detected),
            )
        )
    return rows


def fig3_scorecard(rows: Sequence[Fig3Row]):
    """Score the characterization sweep across every device.

    Pools the per-device true/false positive/negative counts into one
    ``repro.obs.scorecard/v1`` record (kind ``campaign``), with the
    paper's 1-hop observation tracked as ``one_hop_exact`` and per-device
    counts kept in the details.
    """
    from repro.obs.events import current_run_id
    from repro.obs.scorecard import DetectionQuality, Scorecard

    quality = DetectionQuality(
        true_positives=sum(r.true_positives for r in rows),
        false_positives=sum(r.false_positives for r in rows),
        false_negatives=sum(r.false_negatives for r in rows),
    )
    metrics = quality.to_metrics()
    metrics["devices"] = float(len(rows))
    metrics["one_hop_exact"] = (
        1.0 if all(r.all_detected_at_one_hop for r in rows) else 0.0
    )
    return Scorecard(
        kind="campaign", name="fig3_characterization",
        run_id=current_run_id(), metrics=metrics,
        details={
            "per_device": [
                {
                    "device": r.device,
                    "detected": len(r.detected_pairs),
                    "planted": len(r.planted_pairs),
                    "true_positives": r.true_positives,
                    "false_positives": r.false_positives,
                    "false_negatives": r.false_negatives,
                }
                for r in rows
            ],
        },
    )


def format_table(rows: Sequence[Fig3Row]) -> str:
    lines = ["Figure 3: detected high-crosstalk gate pairs (E(gi|gj) > 3 E(gi))"]
    for row in rows:
        lines.append(f"\n{row.device}:")
        lines.append(
            f"  planted {len(row.planted_pairs)} pairs, detected "
            f"{len(row.detected_pairs)} "
            f"(TP {row.true_positives} / FP {row.false_positives} / "
            f"FN {row.false_negatives})"
        )
        lines.append(f"  worst degradation observed: {row.max_degradation:.1f}x "
                     f"(paper: up to 11x)")
        lines.append(f"  all detected pairs at 1 hop: {row.all_detected_at_one_hop}")
        for pair in row.detected_pairs:
            marker = "TP" if pair in row.planted_pairs else "FP"
            lines.append(f"    [{marker}] {pair[0]} | {pair[1]}")
    return "\n".join(lines)


def main() -> List[Fig3Row]:
    rows = run_fig3()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
