"""Figure 6: the three schedules for the SWAP path 0 -> 13 on Poughkeepsie.

The qualitative story the reproduction must show:

* SerialSched runs all four SWAPs in series (barriers everywhere);
* ParSched overlaps SWAP 5,10 with SWAP 11,12 — the high-crosstalk pair;
* XtalkSched parallelizes the far-apart SWAPs, serializes the interfering
  ones, and — because qubit 10 has ~10x lower coherence than the device
  average — orders SWAP 11,12 *before* SWAP 5,10 so qubit 10's lifetime
  (which starts at its first gate) stays minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.device.backend import NoisyBackend
from repro.device.device import Device
from repro.device.presets import ibmq_poughkeepsie
from repro.device.topology import normalize_edge
from repro.experiments.common import (
    ExperimentConfig,
    ground_truth_report,
    prepare_circuit,
    swap_error_rate,
)
from repro.transpiler.schedule import Schedule
from repro.workloads.swap import swap_benchmark


@dataclass
class Fig6Result:
    schedules: Dict[str, Schedule]
    errors: Dict[str, float]
    durations: Dict[str, float]
    qubit10_first_gate: Dict[str, float]
    crosstalk_pair_overlaps: Dict[str, bool]
    swap_5_10_after_11_12: bool


def _chains_overlap(schedule: Schedule) -> bool:
    """Do any gates on edges (5,10) and (11,12) overlap in time?"""
    ops_a = [t for t in schedule.two_qubit_ops()
             if normalize_edge(t.instruction.qubits) == (5, 10)]
    ops_b = [t for t in schedule.two_qubit_ops()
             if normalize_edge(t.instruction.qubits) == (11, 12)]
    return any(a.overlaps(b) for a in ops_a for b in ops_b)


def run_fig6(device: Optional[Device] = None,
             config: Optional[ExperimentConfig] = None) -> Fig6Result:
    device = device or ibmq_poughkeepsie()
    config = config or ExperimentConfig()
    report = ground_truth_report(device)
    backend = NoisyBackend(device)
    # Pin the paper's route: SWAP 0,5; 5,10; 13,12; 12,11; CNOT 10,11.
    bench = swap_benchmark(device.coupling, 0, 13, path=(0, 5, 10, 11, 12, 13))

    schedules: Dict[str, Schedule] = {}
    errors: Dict[str, float] = {}
    durations: Dict[str, float] = {}
    first_gate: Dict[str, float] = {}
    overlaps: Dict[str, bool] = {}
    for scheduler in ("SerialSched", "ParSched", "XtalkSched"):
        prepared = prepare_circuit(scheduler, bench.circuit, device, report,
                                   omega=config.omega)
        hw = backend.schedule_of(prepared)
        schedules[scheduler] = hw
        err, dur = swap_error_rate(backend, bench, scheduler, report, config)
        errors[scheduler] = err
        durations[scheduler] = dur
        timeline = hw.qubit_timeline(10)
        first_gate[scheduler] = min(t.start for t in timeline)
        overlaps[scheduler] = _chains_overlap(hw)

    xtalk = schedules["XtalkSched"]
    start_5_10 = min(
        t.start for t in xtalk.two_qubit_ops()
        if normalize_edge(t.instruction.qubits) == (5, 10)
    )
    start_11_12 = min(
        t.start for t in xtalk.two_qubit_ops()
        if normalize_edge(t.instruction.qubits) == (11, 12)
    )
    return Fig6Result(
        schedules=schedules,
        errors=errors,
        durations=durations,
        qubit10_first_gate=first_gate,
        crosstalk_pair_overlaps=overlaps,
        swap_5_10_after_11_12=start_5_10 > start_11_12,
    )


def format_report(result: Fig6Result) -> str:
    lines = ["Figure 6: schedules for the SWAP path 0 -> 13 on Poughkeepsie\n"]
    for name, schedule in result.schedules.items():
        lines.append(f"--- {name} "
                     f"(error {result.errors[name]:.3f}, "
                     f"duration {result.durations[name]:.0f} ns, "
                     f"SWAP(5,10)||SWAP(11,12) overlap: "
                     f"{result.crosstalk_pair_overlaps[name]})")
        lines.append(schedule.gantt([0, 5, 10, 11, 12, 13]))
        lines.append(schedule.format([0, 5, 10, 11, 12, 13]))
        lines.append("")
    lines.append(
        f"XtalkSched orders SWAP 11,12 before SWAP 5,10 "
        f"(protecting low-coherence qubit 10): {result.swap_5_10_after_11_12}"
    )
    return "\n".join(lines)


def main() -> Fig6Result:
    result = run_fig6()
    print(format_report(result))
    return result


if __name__ == "__main__":
    main()
