"""Section 9.4: scheduler compile-time scaling on supremacy circuits.

The paper compiles random supremacy-style circuits of 6-18 qubits and
100-1000 gates (depth 40): 500-gate instances solve in under 2 minutes,
1000-gate instances in under 15.  Scaling depends on the gate count, not
the qubit count, because the constraints live on the gate schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.device.device import Device
from repro.device.presets import ibmq_poughkeepsie
from repro.experiments.common import ground_truth_report
from repro.pipeline.context import PassContext
from repro.pipeline.passes import XtalkSchedulePass
from repro.pipeline.runner import Pipeline
from repro.workloads.supremacy import supremacy_circuit

#: (num_qubits, num_gates) instances; the paper's sweep shape.
DEFAULT_INSTANCES: Tuple[Tuple[int, int], ...] = (
    (6, 100),
    (8, 200),
    (12, 300),
    (16, 500),
    (18, 750),
    (18, 1000),
)


@dataclass
class ScalabilityRow:
    num_qubits: int
    num_gates: int
    num_decisions: int
    compile_seconds: float
    exact: bool


#: Qubit priority centred on Poughkeepsie's crosstalk-prone middle rows, so
#: every instance actually contains high-crosstalk edges (random circuits on
#: a clean corner would give XtalkSched nothing to decide).
_QUBIT_PRIORITY = (10, 11, 12, 5, 15, 13, 14, 7, 6, 9, 8, 17, 16, 18, 19,
                   2, 3, 4, 1, 0)


def run_scalability(device: Optional[Device] = None,
                    instances: Sequence[Tuple[int, int]] = DEFAULT_INSTANCES,
                    omega: float = 0.5, seed: int = 1) -> List[ScalabilityRow]:
    device = device or ibmq_poughkeepsie()
    report = ground_truth_report(device)
    pipeline = Pipeline([XtalkSchedulePass()], name="schedule[XtalkSched]")
    rows: List[ScalabilityRow] = []
    for num_qubits, num_gates in instances:
        qubits = sorted(_QUBIT_PRIORITY[:num_qubits])
        circuit = supremacy_circuit(device.coupling, qubits, num_gates, seed=seed)
        context = PassContext(device=device, report=report, omega=omega,
                              circuit=circuit)
        pipeline.run(context)
        trace = context.trace
        rows.append(
            ScalabilityRow(
                num_qubits=num_qubits,
                num_gates=len(circuit),
                num_decisions=int(trace.counter("schedule.candidate_pairs")),
                compile_seconds=trace.counter("smt.solve_seconds"),
                exact=bool(trace.counter("smt.exact")),
            )
        )
    return rows


def format_table(rows: Sequence[ScalabilityRow]) -> str:
    lines = [
        "Section 9.4: XtalkSched compile-time scaling (supremacy circuits)",
        f"{'qubits':>6s} {'gates':>6s} {'decisions':>9s} "
        f"{'compile (s)':>12s} {'exact':>6s}",
    ]
    for r in rows:
        lines.append(
            f"{r.num_qubits:6d} {r.num_gates:6d} {r.num_decisions:9d} "
            f"{r.compile_seconds:12.2f} {str(r.exact):>6s}"
        )
    lines.append(
        "\npaper: <2 min at 500 gates, <15 min at 1000 gates (Z3); the "
        "greedy mode engages automatically past the exact-decision limit"
    )
    return "\n".join(lines)


def main() -> List[ScalabilityRow]:
    rows = run_scalability()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
