"""Figure 10: characterization machine time under the four policies.

Uses the campaign planner (no hardware execution needed — cost is a
function of the experiment count and the paper's protocol sizing):

* all-pairs baseline: > 8 hours per device;
* Opt 1 (1 hop only): ~5x fewer experiments;
* Opt 2 (+ bin packing): ~2x more reduction;
* Opt 3 (high pairs only): a further 4-7x, landing under 15 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.characterization.campaign import (
    CharacterizationCampaign,
    CharacterizationPolicy,
)
from repro.core.characterization.cost import PAPER_COST_MODEL, CostModel
from repro.core.characterization.report import CrosstalkReport
from repro.device.device import Device
from repro.device.presets import all_devices
from repro.experiments.common import ground_truth_report

POLICY_ORDER = (
    CharacterizationPolicy.ALL_PAIRS,
    CharacterizationPolicy.ONE_HOP,
    CharacterizationPolicy.ONE_HOP_PACKED,
    CharacterizationPolicy.HIGH_ONLY,
)

POLICY_LABELS = {
    CharacterizationPolicy.ALL_PAIRS: "All pairs",
    CharacterizationPolicy.ONE_HOP: "Opt 1: One hop",
    CharacterizationPolicy.ONE_HOP_PACKED: "Opt 2: One hop + bin packing",
    CharacterizationPolicy.HIGH_ONLY: "Opt 3: Only high crosstalk pairs",
}


@dataclass
class Fig10Row:
    device: str
    policy: str
    num_experiments: int
    executions: int
    hours: float


def run_fig10(devices: Optional[Sequence[Device]] = None,
              cost_model: Optional[CostModel] = None,
              prior: Optional[Dict[str, CrosstalkReport]] = None) -> List[Fig10Row]:
    devices = list(devices) if devices is not None else list(all_devices())
    cost_model = cost_model or PAPER_COST_MODEL
    rows: List[Fig10Row] = []
    for device in devices:
        campaign = CharacterizationCampaign(device)
        prior_report = (prior or {}).get(device.name) or ground_truth_report(device)
        for policy in POLICY_ORDER:
            plan = campaign.plan(
                policy,
                prior=prior_report if policy is CharacterizationPolicy.HIGH_ONLY else None,
            )
            rows.append(
                Fig10Row(
                    device=device.name,
                    policy=POLICY_LABELS[policy],
                    num_experiments=plan.num_experiments,
                    executions=cost_model.executions(plan.num_experiments),
                    hours=cost_model.hours(plan.num_experiments),
                )
            )
    return rows


@dataclass
class Fig10Summary:
    device: str
    baseline_hours: float
    final_minutes: float
    total_reduction: float


def summarize(rows: Sequence[Fig10Row]) -> List[Fig10Summary]:
    out = []
    for device in sorted({r.device for r in rows}):
        device_rows = {r.policy: r for r in rows if r.device == device}
        baseline = device_rows[POLICY_LABELS[CharacterizationPolicy.ALL_PAIRS]]
        final = device_rows[POLICY_LABELS[CharacterizationPolicy.HIGH_ONLY]]
        out.append(
            Fig10Summary(
                device=device,
                baseline_hours=baseline.hours,
                final_minutes=final.hours * 60.0,
                total_reduction=baseline.num_experiments / max(final.num_experiments, 1),
            )
        )
    return out


def format_table(rows: Sequence[Fig10Row]) -> str:
    lines = [
        "Figure 10: crosstalk characterization cost",
        f"{'device':22s} {'policy':34s} {'experiments':>11s} "
        f"{'executions':>12s} {'hours':>7s}",
    ]
    for r in rows:
        lines.append(
            f"{r.device:22s} {r.policy:34s} {r.num_experiments:11d} "
            f"{r.executions:12d} {r.hours:7.2f}"
        )
    lines.append("")
    for s in summarize(rows):
        lines.append(
            f"{s.device}: {s.baseline_hours:.1f} h baseline -> "
            f"{s.final_minutes:.0f} min with all optimizations "
            f"({s.total_reduction:.0f}x fewer experiments; paper: 35-73x, "
            f">8 h -> <15 min)"
        )
    return "\n".join(lines)


def main() -> List[Fig10Row]:
    rows = run_fig10()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
