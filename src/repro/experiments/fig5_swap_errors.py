"""Figure 5: SWAP-circuit error rates and durations under the 3 schedulers.

For every crosstalk-affected endpoint pair on each device, the paper
measures the tomography error rate of the meet-in-the-middle SWAP circuit
under SerialSched, ParSched, and XtalkSched (ω = 0.5), plus the program
durations on Poughkeepsie (Figure 5d).  Expected shape: XtalkSched at or
below both baselines everywhere, with multi-x improvements where crosstalk
dominates, at only a modest duration increase over ParSched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.backend import NoisyBackend
from repro.device.device import Device
from repro.device.presets import all_devices
from repro.experiments.common import (
    SCHEDULERS,
    ExperimentConfig,
    ground_truth_report,
    swap_error_rate,
)
from repro.workloads.swap import (
    crosstalk_affected_endpoints,
    crosstalk_route,
    swap_benchmark,
)


@dataclass
class Fig5Row:
    device: str
    qubit_pair: Tuple[int, int]
    path_length: int
    error: Dict[str, float]      # scheduler -> tomography error rate
    duration: Dict[str, float]   # scheduler -> program duration (ns)

    @property
    def improvement_over_par(self) -> float:
        return self.error["ParSched"] / max(self.error["XtalkSched"], 1e-6)

    @property
    def improvement_over_serial(self) -> float:
        return self.error["SerialSched"] / max(self.error["XtalkSched"], 1e-6)

    @property
    def duration_ratio_vs_par(self) -> float:
        return self.duration["XtalkSched"] / self.duration["ParSched"]


def run_fig5(devices: Optional[Sequence[Device]] = None,
             config: Optional[ExperimentConfig] = None,
             max_pairs_per_device: Optional[int] = None,
             omega: float = 0.5) -> List[Fig5Row]:
    devices = list(devices) if devices is not None else list(all_devices())
    config = config or ExperimentConfig()
    rows: List[Fig5Row] = []
    for device in devices:
        report = ground_truth_report(device)
        backend = NoisyBackend(device)
        endpoints = crosstalk_affected_endpoints(
            device.coupling, report.high_pairs()
        )
        if max_pairs_per_device is not None:
            endpoints = endpoints[:max_pairs_per_device]
        for (s, d) in endpoints:
            route = crosstalk_route(device.coupling, s, d, report.high_pairs())
            bench = swap_benchmark(device.coupling, s, d, path=route)
            error: Dict[str, float] = {}
            duration: Dict[str, float] = {}
            for scheduler in SCHEDULERS:
                err, dur = swap_error_rate(
                    backend, bench, scheduler, report, config, omega=omega
                )
                error[scheduler] = err
                duration[scheduler] = dur
            rows.append(
                Fig5Row(
                    device=device.name,
                    qubit_pair=(s, d),
                    path_length=bench.path_length,
                    error=error,
                    duration=duration,
                )
            )
    return rows


@dataclass
class Fig5Summary:
    max_improvement_over_par: float
    geomean_improvement_over_par: float
    max_improvement_over_serial: float
    mean_duration_ratio_vs_par: float
    max_duration_ratio_vs_par: float
    wins: int
    total: int


def summarize(rows: Sequence[Fig5Row]) -> Fig5Summary:
    over_par = [r.improvement_over_par for r in rows]
    over_serial = [r.improvement_over_serial for r in rows]
    ratios = [r.duration_ratio_vs_par for r in rows]
    wins = sum(
        1 for r in rows
        if r.error["XtalkSched"] <= r.error["ParSched"] + 0.02
        and r.error["XtalkSched"] <= r.error["SerialSched"] + 0.02
    )
    return Fig5Summary(
        max_improvement_over_par=max(over_par),
        geomean_improvement_over_par=float(np.exp(np.mean(np.log(over_par)))),
        max_improvement_over_serial=max(over_serial),
        mean_duration_ratio_vs_par=float(np.mean(ratios)),
        max_duration_ratio_vs_par=max(ratios),
        wins=wins,
        total=len(rows),
    )


def format_table(rows: Sequence[Fig5Row]) -> str:
    lines = [
        "Figure 5: SWAP-circuit error rates (a-c) and durations (d)",
        f"{'device':22s} {'pair':>8s} {'len':>3s} "
        f"{'Serial':>8s} {'Par':>8s} {'Xtalk':>8s} "
        f"{'x/Par':>6s} {'durSer':>8s} {'durPar':>8s} {'durXtk':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.device:22s} {str(r.qubit_pair):>8s} {r.path_length:3d} "
            f"{r.error['SerialSched']:8.3f} {r.error['ParSched']:8.3f} "
            f"{r.error['XtalkSched']:8.3f} {r.improvement_over_par:6.2f} "
            f"{r.duration['SerialSched']:8.0f} {r.duration['ParSched']:8.0f} "
            f"{r.duration['XtalkSched']:8.0f}"
        )
    s = summarize(rows)
    lines.append(
        f"\nXtalkSched vs ParSched: max {s.max_improvement_over_par:.1f}x, "
        f"geomean {s.geomean_improvement_over_par:.2f}x "
        f"(paper: max 5.6x, geomean 2x)"
    )
    lines.append(
        f"XtalkSched vs SerialSched: max {s.max_improvement_over_serial:.1f}x "
        f"(paper: up to 9.2x)"
    )
    lines.append(
        f"duration vs ParSched: mean {s.mean_duration_ratio_vs_par:.2f}x, "
        f"worst {s.max_duration_ratio_vs_par:.2f}x (paper: 1.16x / 1.7x)"
    )
    lines.append(f"XtalkSched best-or-tied on {s.wins}/{s.total} circuits")
    return "\n".join(lines)


def main(max_pairs_per_device: Optional[int] = None) -> List[Fig5Row]:
    rows = run_fig5(max_pairs_per_device=max_pairs_per_device)
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
