"""Experiment drivers — one module per paper figure/table.

Each driver exposes a ``run_*`` function returning structured rows plus a
``format_table`` renderer; the ``benchmarks/`` harness calls these to
regenerate every figure and table of the paper's evaluation (see the
experiment index in DESIGN.md §4 and the measured results in
EXPERIMENTS.md).
"""

from repro.experiments.common import (
    ExperimentConfig,
    campaign_cache,
    ground_truth_report,
    characterized_report,
    prepare_circuit,
    run_distribution,
    swap_error_rate,
)

__all__ = [
    "ExperimentConfig",
    "campaign_cache",
    "ground_truth_report",
    "characterized_report",
    "prepare_circuit",
    "run_distribution",
    "swap_error_rate",
]
