"""Figure 1: the paper's motivating example, reproduced end to end.

Figure 1 sketches a 6-qubit machine where CNOT (0,1) and CNOT (2,3)
interfere and qubit 2 has low coherence, and walks through three schedules
of a program with two parallel CNOTs followed by readout:

  (c) the default maximally-parallel schedule — high crosstalk;
  (d) naive serialization — no crosstalk but high decoherence on qubit 2
      (it idles after its gate while the other CNOT runs... the *wrong*
      ordering);
  (e) the desired schedule — serialized in the order that keeps qubit 2's
      lifetime minimal.

This driver builds exactly that machine, constructs the three schedules
(ParSched; XtalkSched with the ordering deliberately inverted; XtalkSched),
executes them, and checks the error ordering (e) < (c), (e) < (d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.device.backend import NoisyBackend
from repro.device.calibration import synthesize_calibration
from repro.device.crosstalk import CrosstalkModel, CrosstalkPair
from repro.device.device import Device
from repro.device.topology import CouplingMap
from repro.experiments.common import (
    ExperimentConfig,
    ground_truth_report,
    run_distribution,
)


def figure1_machine(seed: int = 61) -> Device:
    """The 6-qubit machine of Figure 1a.

    A line 0-1-2-3-4-5 where (0,1)|(2,3) is a high-crosstalk pair and
    qubit 2 has low coherence.
    """
    coupling = CouplingMap(6, [(i, i + 1) for i in range(5)])
    calibration = synthesize_calibration(
        coupling, seed=seed, slow_qubits={2: 6_000.0}, heavy_tail_edges=0
    )
    crosstalk = CrosstalkModel(
        coupling,
        [CrosstalkPair((0, 1), (2, 3), factor_a=8.0, factor_b=8.0)],
        seed=seed + 1,
    )
    return Device("figure1_machine", coupling, calibration, crosstalk,
                  seed=seed)


def figure1_program(device: Device) -> QuantumCircuit:
    """Figure 1b's IR: two parallel CNOTs (entangled inputs) + readout.

    A Hadamard on each control gives the CNOTs non-trivial inputs so the
    output distribution is noise-sensitive in every basis component.
    """
    circ = QuantumCircuit(device.num_qubits, 4, name="fig1_program")
    circ.h(0)
    circ.h(2)
    circ.cx(0, 1)
    circ.cx(2, 3)
    for i, q in enumerate((0, 1, 2, 3)):
        circ.measure(q, i)
    return circ


@dataclass
class Fig1Result:
    errors: Dict[str, float]       # schedule label -> total-variation error
    durations: Dict[str, float]
    qubit2_lifetime: Dict[str, float]


def _tvd_from_ideal(device: Device, circuit: QuantumCircuit,
                    config: ExperimentConfig, backend: NoisyBackend) -> float:
    from repro.experiments.common import distribution_as_dict
    from repro.metrics.distributions import total_variation_distance
    from repro.sim.statevector import ideal_distribution
    from repro.transpiler.barriers import strip_barriers

    ideal = ideal_distribution(strip_barriers(circuit))
    probs = run_distribution(backend, circuit, config)
    return total_variation_distance(distribution_as_dict(probs), ideal)


def run_fig1(config: Optional[ExperimentConfig] = None) -> Fig1Result:
    device = figure1_machine()
    config = config or ExperimentConfig()
    report = ground_truth_report(device)
    backend = NoisyBackend(device)
    program = figure1_program(device)

    # (c) default parallel schedule
    schedules: Dict[str, QuantumCircuit] = {"(c) parallel": program.copy()}

    # (d) naive serialization: CNOT (2,3) first, then CNOT (0,1) -> qubit 2
    # idles under decoherence while the other CNOT runs.
    naive = QuantumCircuit(device.num_qubits, 4, name="fig1_naive")
    naive.h(0)
    naive.h(2)
    naive.cx(2, 3)
    naive.barrier(0, 1, 2, 3)
    naive.cx(0, 1)
    for i, q in enumerate((0, 1, 2, 3)):
        naive.measure(q, i)
    schedules["(d) naive serial"] = naive

    # (e) the desired schedule: XtalkSched picks the serialization order
    # that minimizes the low-coherence qubit's lifetime.
    from repro.experiments.common import prepare_circuit

    schedules["(e) XtalkSched"] = prepare_circuit(
        "XtalkSched", program, device, report, omega=0.5
    )

    errors: Dict[str, float] = {}
    durations: Dict[str, float] = {}
    lifetimes: Dict[str, float] = {}
    for label, circuit in schedules.items():
        errors[label] = _tvd_from_ideal(device, circuit, config, backend)
        hw = backend.schedule_of(circuit)
        durations[label] = hw.makespan()
        lifetimes[label] = hw.qubit_lifetime(2)
    return Fig1Result(errors, durations, lifetimes)


def format_report(result: Fig1Result) -> str:
    lines = [
        "Figure 1: the crosstalk-vs-decoherence tradeoff on the example machine",
        f"{'schedule':>18s} {'TV error':>9s} {'duration':>9s} "
        f"{'q2 lifetime':>12s}",
    ]
    for label in result.errors:
        lines.append(
            f"{label:>18s} {result.errors[label]:9.3f} "
            f"{result.durations[label]:9.0f} "
            f"{result.qubit2_lifetime[label]:12.0f}"
        )
    lines.append(
        "\nthe desired schedule avoids the crosstalk overlap AND keeps the "
        "low-coherence qubit's lifetime minimal — Figure 1e"
    )
    return "\n".join(lines)


def main() -> Fig1Result:
    result = run_fig1()
    print(format_report(result))
    return result


if __name__ == "__main__":
    main()
