"""Command-line entry point for the figure drivers.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig6
    python -m repro.experiments fig5 --fast
    python -m repro.experiments all --fast

``--fast`` shrinks endpoint subsets and trajectory counts for a quick look;
the benchmark harness (``pytest benchmarks/ --benchmark-only``) remains the
canonical way to regenerate the paper's numbers.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig1_motivation,
    fig3_characterization,
    fig4_daily_drift,
    fig5_swap_errors,
    fig6_example_schedules,
    fig7_optimality,
    fig8_qaoa,
    fig9_hidden_shift,
    fig10_characterization_cost,
    scalability,
    sensitivity,
)
from repro.experiments.common import ExperimentConfig
from repro.rb.executor import RBConfig


def _run_fig3(fast: bool) -> None:
    from repro.device.presets import ibmq_poughkeepsie

    kwargs = {}
    if fast:
        kwargs["devices"] = [ibmq_poughkeepsie()]
        kwargs["rb_config"] = RBConfig(num_sequences=12, shots=1024)
    print(fig3_characterization.format_table(
        fig3_characterization.run_fig3(**kwargs)
    ))


def _run_fig4(fast: bool) -> None:
    kwargs = {"days": 3} if fast else {}
    print(fig4_daily_drift.format_table(fig4_daily_drift.run_fig4(**kwargs)))


def _run_fig5(fast: bool) -> None:
    rows = fig5_swap_errors.run_fig5(
        config=ExperimentConfig(trajectories=100 if fast else 160),
        max_pairs_per_device=3 if fast else 6,
    )
    print(fig5_swap_errors.format_table(rows))


def _run_fig6(fast: bool) -> None:
    print(fig6_example_schedules.format_report(
        fig6_example_schedules.run_fig6()
    ))


def _run_fig7(fast: bool) -> None:
    rows = fig7_optimality.run_fig7(max_pairs=3 if fast else 6)
    print(fig7_optimality.format_table(rows))


def _run_fig8(fast: bool) -> None:
    kwargs = {}
    if fast:
        kwargs["omegas"] = (0.0, 0.1, 0.35, 1.0)
        kwargs["regions"] = [(5, 10, 11, 12)]
    print(fig8_qaoa.format_table(fig8_qaoa.run_fig8(**kwargs)))


def _run_fig9(fast: bool) -> None:
    kwargs = {}
    if fast:
        kwargs["omegas"] = (0.0, 0.35, 1.0)
        kwargs["regions"] = [(5, 10, 11, 12), (11, 12, 13, 14)]
    print(fig9_hidden_shift.format_table(fig9_hidden_shift.run_fig9(**kwargs)))


def _run_fig10(fast: bool) -> None:
    print(fig10_characterization_cost.format_table(
        fig10_characterization_cost.run_fig10()
    ))


def _run_scalability(fast: bool) -> None:
    instances = ((6, 100), (8, 200), (12, 300)) if fast else \
        scalability.DEFAULT_INSTANCES
    print(scalability.format_table(
        scalability.run_scalability(instances=instances)
    ))


def _run_sensitivity(fast: bool) -> None:
    factors = (1.5, 3.0, 8.0) if fast else sensitivity.DEFAULT_FACTORS
    print(sensitivity.format_table(sensitivity.run_sensitivity(factors)))


def _run_fig1(fast: bool) -> None:
    print(fig1_motivation.format_report(fig1_motivation.run_fig1()))


EXPERIMENTS = {
    "fig1": ("Figure 1: motivating tradeoff example", _run_fig1),
    "fig3": ("Figure 3: crosstalk maps", _run_fig3),
    "fig4": ("Figure 4: daily drift", _run_fig4),
    "fig5": ("Figure 5: SWAP errors + durations", _run_fig5),
    "fig6": ("Figure 6: example schedules", _run_fig6),
    "fig7": ("Figure 7: near-optimality", _run_fig7),
    "fig8": ("Figure 8: QAOA omega sweep", _run_fig8),
    "fig9": ("Figure 9: Hidden Shift omega sweep", _run_fig9),
    "fig10": ("Figure 10: characterization cost", _run_fig10),
    "scalability": ("Section 9.4: compile-time scaling", _run_scalability),
    "sensitivity": ("Extension: gap vs crosstalk strength", _run_sensitivity),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("experiment",
                        choices=[*EXPERIMENTS, "list", "all"],
                        help="which figure to regenerate")
    parser.add_argument("--fast", action="store_true",
                        help="smaller sweeps for a quick look")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:12s} {description}")
        return 0

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in targets:
        description, runner = EXPERIMENTS[name]
        print(f"\n=== {description} ===")
        started = time.perf_counter()
        runner(args.fast)
        print(f"[{name}: {time.perf_counter() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
