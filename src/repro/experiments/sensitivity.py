"""Extension study: how much does mitigation matter as crosstalk grows?

The paper's conclusion argues software mitigation becomes more valuable as
devices scale and crosstalk worsens.  This study quantifies that on the
reproduction: sweep the planted conditional-error factor of one gate pair
and measure ParSched vs XtalkSched error on a SWAP circuit crossing it.
Expected shape: the two schedulers tie when the factor is ~1 (XtalkSched
stays maximally parallel), and the gap widens monotonically with the
factor, while XtalkSched's own error stays nearly flat (it pays only the
serialization cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.device.calibration import synthesize_calibration
from repro.device.crosstalk import CrosstalkModel, CrosstalkPair
from repro.device.device import Device
from repro.device.backend import NoisyBackend
from repro.device.topology import line_coupling_map
from repro.experiments.common import (
    ExperimentConfig,
    ground_truth_report,
    swap_error_rate,
)
from repro.workloads.swap import swap_benchmark

DEFAULT_FACTORS: Tuple[float, ...] = (1.5, 2.0, 3.0, 5.0, 8.0, 12.0)


@dataclass
class SensitivityRow:
    factor: float
    par_error: float
    xtalk_error: float
    xtalk_serialized: bool

    @property
    def improvement(self) -> float:
        return self.par_error / max(self.xtalk_error, 1e-6)


def _device_with_factor(factor: float, seed: int = 51) -> Device:
    """A 10-qubit line with one crosstalk pair of the given strength."""
    coupling = line_coupling_map(10)
    calibration = synthesize_calibration(coupling, seed=seed,
                                         heavy_tail_edges=0)
    pairs = []
    if factor > 1.0:
        pairs.append(CrosstalkPair((3, 4), (5, 6), factor_a=factor,
                                   factor_b=factor))
    crosstalk = CrosstalkModel(coupling, pairs, seed=seed + 1,
                               background_factor=1.0)
    return Device(f"line10_f{factor}", coupling, calibration, crosstalk,
                  seed=seed)


def run_sensitivity(factors: Sequence[float] = DEFAULT_FACTORS,
                    config: Optional[ExperimentConfig] = None,
                    omega: float = 0.5) -> List[SensitivityRow]:
    config = config or ExperimentConfig()
    rows: List[SensitivityRow] = []
    for factor in factors:
        device = _device_with_factor(factor)
        report = ground_truth_report(device)
        backend = NoisyBackend(device)
        # SWAP 1 -> 8 crosses the (3,4)|(5,6) pair with its two chains.
        bench = swap_benchmark(device.coupling, 1, 8)
        par, _ = swap_error_rate(backend, bench, "ParSched", report, config,
                                 omega=omega)
        xtalk_prepared_has_barriers = False
        xtalk, _ = swap_error_rate(backend, bench, "XtalkSched", report,
                                   config, omega=omega)
        from repro.experiments.common import prepare_circuit

        prepared = prepare_circuit("XtalkSched", bench.circuit, device,
                                   report, omega=omega)
        xtalk_prepared_has_barriers = any(i.is_barrier for i in prepared)
        rows.append(SensitivityRow(factor, par, xtalk,
                                   xtalk_prepared_has_barriers))
    return rows


def format_table(rows: Sequence[SensitivityRow]) -> str:
    lines = [
        "Sensitivity: scheduler gap vs planted crosstalk strength",
        f"{'factor':>7s} {'ParSched':>9s} {'XtalkSched':>11s} "
        f"{'improvement':>12s} {'serialized':>11s}",
    ]
    for r in rows:
        lines.append(
            f"{r.factor:7.1f} {r.par_error:9.3f} {r.xtalk_error:11.3f} "
            f"{r.improvement:11.2f}x {str(r.xtalk_serialized):>11s}"
        )
    lines.append(
        "\nthe gap widens with crosstalk strength while XtalkSched's own "
        "error stays nearly flat — the case for software mitigation as "
        "devices scale (paper, Sections 1 and 11)"
    )
    return "\n".join(lines)


def main() -> List[SensitivityRow]:
    rows = run_sensitivity()
    print(format_table(rows))
    return rows


if __name__ == "__main__":
    main()
