"""The typed context threaded through a pipeline run.

A :class:`PassContext` carries everything Figure 2's toolflow hands from
stage to stage: the target device and day, the crosstalk characterization,
the evolving circuit IR, the layout, and the artifacts later stages (or the
caller) want back — the solver's :class:`ScheduledCircuit`, the hardware
schedule, the makespan.  Passes read what they need and write what they
produce; anything without a dedicated field goes in ``artifacts``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.core.characterization.report import CrosstalkReport
from repro.core.scheduling.xtalk import ScheduledCircuit
from repro.device.device import Device
from repro.pipeline.trace import PipelineTrace


@dataclass
class PassContext:
    """Mutable state shared by the passes of one pipeline run.

    Attributes:
        device: the target device; passes only consult its compiler-visible
            surface (coupling map, daily calibration).
        day: calibration day every pass schedules against.
        report: crosstalk characterization (required by the xtalk policy).
        omega: XtalkSched's crosstalk weight factor.
        initial_layout: requested logical->physical placement (None =
            identity); :class:`~repro.pipeline.passes.LayoutPass` resolves it.
        circuit: the current IR — each pass replaces it with its output.
        source_circuit: the untouched input circuit (for names/metadata).
        layout: final logical->physical map once routing has run.
        scheduled: XtalkSched artifacts when the xtalk policy scheduled.
        duration: hardware-schedule makespan (ns) once computed.
        artifacts: free-form side outputs keyed by pass name.
        trace: the instrumentation record, attached by the runner.
    """

    device: Device
    day: int = 0
    report: Optional[CrosstalkReport] = None
    omega: float = 0.5
    initial_layout: Optional[Sequence[int]] = None
    circuit: Optional[QuantumCircuit] = None
    source_circuit: Optional[QuantumCircuit] = None
    layout: Optional[List[int]] = None
    scheduled: Optional[ScheduledCircuit] = None
    duration: Optional[float] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[PipelineTrace] = None

    def __post_init__(self) -> None:
        if self.source_circuit is None and self.circuit is not None:
            self.source_circuit = self.circuit

    @property
    def calibration(self):
        """The day's calibration snapshot (what IBM publishes daily)."""
        return self.device.calibration(self.day)

    def require_circuit(self) -> QuantumCircuit:
        if self.circuit is None:
            raise ValueError("pipeline context has no circuit to transform")
        return self.circuit
