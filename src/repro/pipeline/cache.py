"""A content-keyed, size-bounded result cache.

Replaces the ad-hoc ``_report_cache`` dict the experiment drivers used to
share: keys are built from *content* (a device fingerprint over topology and
base calibration, the calibration day, the campaign seed, and the full RB
protocol sizing), so two campaigns that would measure different things can
never collide — the historical ``(device.name, day, seed)`` key silently
returned one RB config's outcome for another.

The cache is a plain LRU bounded by ``max_entries`` with hit/miss/eviction
accounting, usable for any expensive derived result (campaign outcomes,
compiled circuits, ...).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.device.device import Device


# ----------------------------------------------------------------------
# content keys
# ----------------------------------------------------------------------
def device_fingerprint(device: Device) -> str:
    """A stable digest of a device's compiler-visible identity.

    Covers the name, the device seed (which drives daily drift), the
    coupling map, and the base calibration (error rates, coherence times,
    durations).  Two devices with equal fingerprints produce identical
    campaign plans and — given equal seeds — identical measured outcomes.
    """
    cal = device.base_calibration
    durations = cal.durations
    payload = {
        "name": device.name,
        "seed": device.seed,
        "num_qubits": device.num_qubits,
        "edges": sorted(list(edge) for edge in device.coupling.edges),
        "cnot_error": sorted(
            [list(edge), err] for edge, err in cal.cnot_error.items()
        ),
        "single_qubit_error": sorted(cal.single_qubit_error.items()),
        "readout_error": sorted(cal.readout_error.items()),
        "t1": sorted(cal.t1.items()),
        "t2": sorted(cal.t2.items()),
        "durations": {
            "single_qubit": durations.single_qubit,
            "measurement": durations.measurement,
            "default_cx": durations.default_cx,
            "cx": sorted([list(edge), d] for edge, d in durations.cx.items()),
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def campaign_cache_key(device: Device, day: int, seed: int,
                       rb_config: Any, policy: Any = None) -> Tuple:
    """The content key for one characterization campaign outcome.

    ``rb_config`` is an :class:`~repro.rb.executor.RBConfig` (a frozen
    dataclass — every sizing field participates, fixing the historical bug
    where two different RB configs shared a cache slot).
    """
    from dataclasses import astuple, is_dataclass

    config_key: Hashable
    if is_dataclass(rb_config):
        config_key = (type(rb_config).__name__, astuple(rb_config))
    else:
        config_key = repr(rb_config)
    policy_key = getattr(policy, "value", policy)
    return (device_fingerprint(device), int(day), int(seed),
            config_key, policy_key)


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class _InFlight:
    """One in-progress computation: followers block on ``event``.

    ``leader_thread`` records who is running ``compute()`` so a re-entrant
    request for the same key from the leader's own thread can be rejected
    (it would otherwise deadlock waiting on an event only it can set).
    """

    __slots__ = ("event", "value", "error", "leader_thread")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.leader_thread: Optional[int] = None


class ResultCache:
    """A size-bounded LRU mapping content keys to computed results.

    Thread-safe: all map operations hold an internal lock, and
    :meth:`get_or_compute` is *single-flight* — when several threads miss on
    the same key concurrently, exactly one (the leader) runs ``compute()``
    while the rest wait for its result (counting as hits).  ``compute`` is
    never invoked twice for one key unless an earlier computation failed or
    the entry was evicted.  The lock is **not** held during ``compute()``,
    so computations for different keys proceed concurrently.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._in_flight: Dict[Hashable, _InFlight] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return default

    def _put_locked(self, key: Hashable, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._put_locked(key, value)

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing and inserting it on a miss.

        Single-flight: concurrent callers missing on the same key share one
        computation — the leader runs ``compute()``, followers block until
        it finishes and receive the same value (or re-raise the leader's
        exception).  A failed ``compute()`` clears the in-flight latch, so
        the next caller re-runs it rather than receiving a wedged entry.
        A re-entrant call for the same key from inside ``compute()`` raises
        ``RuntimeError`` instead of deadlocking.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            flight = self._in_flight.get(key)
            if flight is None:
                flight = _InFlight()
                flight.leader_thread = threading.get_ident()
                self._in_flight[key] = flight
                leader = True
                self.stats.misses += 1
            else:
                leader = False

        if not leader:
            if flight.leader_thread == threading.get_ident():
                raise RuntimeError(
                    f"re-entrant get_or_compute for key {key!r}: compute() "
                    "requested the key it is itself computing"
                )
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.stats.hits += 1
            return flight.value

        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        else:
            flight.value = value
            with self._lock:
                self._put_locked(key, value)
            return value
        finally:
            with self._lock:
                self._in_flight.pop(key, None)
            flight.event.set()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self):
        with self._lock:
            return list(self._entries)
