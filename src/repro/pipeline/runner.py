"""The :class:`Pipeline` runner: ordered passes + built-in observability.

Running a pipeline threads one :class:`PassContext` through its passes in
order, timing each pass and collecting its counters into a
:class:`~repro.pipeline.trace.PipelineTrace` that is attached to the
context (and to the pipeline as ``last_trace``), then emitted to any active
:class:`~repro.pipeline.trace.TraceCollector`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.obs.events import log_event
from repro.obs.registry import get_registry
from repro.pipeline.context import PassContext
from repro.pipeline.passes import Pass, compile_passes
from repro.pipeline.trace import PipelineTrace, SpanRecorder


class Pipeline:
    """An ordered, instrumented sequence of compiler passes."""

    def __init__(self, passes: Sequence[Pass], name: str = "pipeline"):
        self.passes: Tuple[Pass, ...] = tuple(passes)
        self.name = name
        self.last_trace: Optional[PipelineTrace] = None

    def __repr__(self) -> str:
        stages = ", ".join(p.name for p in self.passes)
        return f"Pipeline({self.name!r}: [{stages}])"

    @property
    def pass_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    # ------------------------------------------------------------------
    def run(self, context: PassContext) -> PassContext:
        """Run every pass over ``context``; attach and emit the trace."""
        registry = get_registry()
        recorder = SpanRecorder(self.name)
        for stage in self.passes:
            with recorder.span(stage.name) as span:
                counters = stage.run(context)
                if counters:
                    span.counters.update(counters)
            registry.inc("pipeline.passes")
            registry.observe("pipeline.pass_seconds", span.seconds)
        context.trace = recorder.finish()
        self.last_trace = context.trace
        registry.inc("pipeline.runs")
        log_event(
            "pipeline.run",
            pipeline=self.name,
            passes=len(self.passes),
            seconds=context.trace.total_seconds,
        )
        return context


def build_compile_pipeline(scheduler: str = "xtalk",
                           select_region: bool = False,
                           scheduler_kwargs: Optional[dict] = None) -> Pipeline:
    """The Figure 2 toolflow as a pipeline: layout -> routing -> basis
    decomposition -> scheduling policy -> hardware timing.

    ``scheduler_kwargs`` is forwarded to the scheduling pass (e.g.
    ``max_solve_seconds`` / ``fallback`` for ``"xtalk"``)."""
    return Pipeline(
        compile_passes(scheduler, select_region=select_region,
                       scheduler_kwargs=scheduler_kwargs),
        name=f"compile[{scheduler}]",
    )
