"""The compiler stages of Figure 2, expressed as pipeline passes.

Each pass wraps one of the existing :mod:`repro.transpiler` /
:mod:`repro.core.scheduling` functions — the passes add structure and
instrumentation, never new semantics, so a pipeline of
``[LayoutPass, RoutingPass, DecomposePass, <scheduling pass>,
HardwareSchedulePass]`` is instruction-for-instruction equivalent to the
historical monolithic ``compile_circuit``.

Counters reported per pass (the ISSUE's observability surface):

* ``routing.swaps_inserted`` — SWAPs the router added;
* ``decompose.cnots_out`` / ``decompose.gates_out`` — lowering volume;
* ``schedule.candidate_pairs`` / ``schedule.serialized_pairs`` — the
  solver's decision surface and how much it serialized;
* ``smt.nodes_explored`` / ``smt.solve_seconds`` / ``smt.exact`` — solver
  effort and whether the branch-and-bound finished exactly;
* ``hardware.makespan_ns`` — the final right-aligned schedule's makespan.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.scheduling.baselines import disable_sched, par_sched, serial_sched
from repro.core.scheduling.xtalk import XtalkScheduler
from repro.pipeline.context import PassContext
from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.routing import route_circuit
from repro.transpiler.scheduling import hardware_schedule

Counters = Mapping[str, float]


class Pass:
    """One pipeline stage.

    Subclasses set :attr:`name` and implement :meth:`run`, which mutates the
    context and optionally returns counters for the pass's trace span.
    """

    name: str = "pass"

    def run(self, context: PassContext) -> Optional[Counters]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
class LayoutPass(Pass):
    """Resolve the initial logical->physical placement.

    With no request the identity placement is used (the historical
    ``compile_circuit`` behaviour).  With ``select_region=True`` and a
    line-shaped circuit, the noise- and crosstalk-aware region scorer of
    :mod:`repro.transpiler.layout` picks the best path region instead.
    """

    name = "layout"

    def __init__(self, select_region: bool = False):
        self.select_region = select_region

    def run(self, context: PassContext) -> Optional[Counters]:
        circuit = context.require_circuit()
        if context.initial_layout is not None:
            if len(context.initial_layout) != circuit.num_qubits:
                raise ValueError("layout must place every logical qubit")
            context.initial_layout = list(context.initial_layout)
            return {"layout.requested": 1.0}
        if self.select_region:
            from repro.transpiler.layout import best_path_region

            score = best_path_region(
                context.device.coupling, context.calibration,
                circuit.num_qubits, context.report,
            )
            context.initial_layout = list(score.region)
            context.artifacts[self.name] = score
            return {"layout.regions_scored": 1.0,
                    "layout.predicted_error": score.total}
        context.initial_layout = list(range(circuit.num_qubits))
        return {"layout.identity": 1.0}


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class RoutingPass(Pass):
    """Greedy SWAP insertion onto the device coupling map."""

    name = "routing"

    def run(self, context: PassContext) -> Optional[Counters]:
        circuit = context.require_circuit()
        swaps_before = sum(1 for i in circuit if i.name == "swap")
        routed, layout = route_circuit(
            circuit, context.device.coupling,
            initial_layout=context.initial_layout,
        )
        context.circuit = routed
        context.layout = list(layout)
        swaps_after = sum(1 for i in routed if i.name == "swap")
        return {
            "routing.swaps_inserted": float(swaps_after - swaps_before),
            "routing.gates_out": float(len(routed)),
        }


# ----------------------------------------------------------------------
# basis decomposition
# ----------------------------------------------------------------------
class DecomposePass(Pass):
    """Lower SWAP/CZ macros onto the CNOT + u1/u2/u3 hardware basis."""

    name = "decompose"

    def run(self, context: PassContext) -> Optional[Counters]:
        circuit = context.require_circuit()
        gates_in = len(circuit)
        lowered = decompose_to_basis(circuit)
        # The historical pipeline renames the lowered circuit back to the
        # source circuit's name so scheduler suffixes compose cleanly.
        if context.source_circuit is not None:
            lowered.name = context.source_circuit.name
        context.circuit = lowered
        cnots = sum(1 for i in lowered if i.is_two_qubit)
        return {
            "decompose.gates_in": float(gates_in),
            "decompose.gates_out": float(len(lowered)),
            "decompose.cnots_out": float(cnots),
        }


# ----------------------------------------------------------------------
# scheduling policies (Table 1 + the hardware-disable baseline)
# ----------------------------------------------------------------------
class SchedulingPass(Pass):
    """Base class for the four scheduling policies."""

    #: canonical policy name ("xtalk", "par", "serial", "disable")
    policy: str = ""


class ParSchedulePass(SchedulingPass):
    """``ParSched``: submit unchanged; the hardware parallelizes maximally."""

    name = "schedule[par]"
    policy = "par"

    def run(self, context: PassContext) -> Optional[Counters]:
        context.circuit = par_sched(context.require_circuit())
        return {"schedule.serialized_pairs": 0.0}


class SerialSchedulePass(SchedulingPass):
    """``SerialSched``: a barrier after every gate."""

    name = "schedule[serial]"
    policy = "serial"

    def run(self, context: PassContext) -> Optional[Counters]:
        circuit = context.require_circuit()
        context.circuit = serial_sched(circuit)
        barriers = sum(1 for i in context.circuit if i.is_barrier)
        return {"schedule.barriers_inserted": float(barriers)}


class DisableSchedulePass(SchedulingPass):
    """The blanket nearby-gate-disable policy (Rigetti / Bristlecone)."""

    name = "schedule[disable]"
    policy = "disable"

    def __init__(self, min_hops: int = 2):
        self.min_hops = min_hops

    def run(self, context: PassContext) -> Optional[Counters]:
        circuit = context.require_circuit()
        context.circuit = disable_sched(
            circuit, context.device.coupling, min_hops=self.min_hops
        )
        barriers = sum(1 for i in context.circuit if i.is_barrier)
        return {"schedule.barriers_inserted": float(barriers)}


class XtalkSchedulePass(SchedulingPass):
    """``XtalkSched``: the Section 7 SMT-style optimization."""

    name = "schedule[xtalk]"
    policy = "xtalk"

    def __init__(self, **scheduler_kwargs):
        #: forwarded verbatim to :class:`XtalkScheduler` (omega comes from
        #: the context unless explicitly pinned here).
        self.scheduler_kwargs = dict(scheduler_kwargs)

    def run(self, context: PassContext) -> Optional[Counters]:
        if context.report is None:
            raise ValueError(
                "the xtalk scheduler needs a characterization report"
            )
        kwargs = dict(self.scheduler_kwargs)
        kwargs.setdefault("omega", context.omega)
        xs = XtalkScheduler(context.calibration, context.report, **kwargs)
        scheduled = xs.schedule(context.require_circuit())
        context.scheduled = scheduled
        context.circuit = scheduled.circuit
        solution = scheduled.solution
        return {
            "schedule.candidate_pairs": float(len(scheduled.candidate_pairs)),
            "schedule.serialized_pairs": float(len(scheduled.serialized_pairs)),
            "smt.nodes_explored": float(solution.nodes_explored),
            "smt.solve_seconds": scheduled.compile_seconds,
            "smt.exact": 1.0 if solution.exact else 0.0,
            "schedule.fallback": 1.0 if scheduled.fallback_reason else 0.0,
        }


# ----------------------------------------------------------------------
# hardware timing
# ----------------------------------------------------------------------
class HardwareSchedulePass(Pass):
    """Re-time the circuit as the IBMQ control electronics would."""

    name = "hardware_schedule"

    def run(self, context: PassContext) -> Optional[Counters]:
        circuit = context.require_circuit()
        schedule = hardware_schedule(circuit, context.calibration.durations)
        context.artifacts[self.name] = schedule
        context.duration = schedule.makespan()
        return {"hardware.makespan_ns": context.duration}


# ----------------------------------------------------------------------
# factories
# ----------------------------------------------------------------------
#: canonical policy name -> pass class
SCHEDULING_PASSES: Dict[str, type] = {
    "xtalk": XtalkSchedulePass,
    "par": ParSchedulePass,
    "serial": SerialSchedulePass,
    "disable": DisableSchedulePass,
}

#: experiment-style aliases (Table 1 names) -> canonical policy names
POLICY_ALIASES: Dict[str, str] = {
    "XtalkSched": "xtalk",
    "ParSched": "par",
    "SerialSched": "serial",
    "DisableSched": "disable",
}


def canonical_policy(scheduler: str) -> str:
    """Map either naming convention onto a canonical policy name."""
    name = POLICY_ALIASES.get(scheduler, scheduler)
    if name not in SCHEDULING_PASSES:
        choices = tuple(SCHEDULING_PASSES)
        raise ValueError(
            f"unknown scheduler {scheduler!r}; pick from {choices}"
        )
    return name


def scheduling_pass(scheduler: str, **kwargs) -> SchedulingPass:
    """Instantiate the scheduling pass for a policy (either naming style)."""
    return SCHEDULING_PASSES[canonical_policy(scheduler)](**kwargs)


def compile_passes(scheduler: str = "xtalk",
                   select_region: bool = False,
                   scheduler_kwargs: Optional[Dict] = None) -> Tuple[Pass, ...]:
    """The full Figure 2 stage list for one scheduling policy.

    ``scheduler_kwargs`` is forwarded to the scheduling pass constructor
    (e.g. ``max_solve_seconds`` / ``fallback`` for ``"xtalk"``).
    """
    return (
        LayoutPass(select_region=select_region),
        RoutingPass(),
        DecomposePass(),
        scheduling_pass(scheduler, **(scheduler_kwargs or {})),
        HardwareSchedulePass(),
    )
