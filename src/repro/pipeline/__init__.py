"""Pass-pipeline compiler core with per-pass instrumentation.

The Figure 2 toolflow — layout, routing, basis decomposition,
crosstalk-adaptive scheduling, hardware timing — expressed as swappable
passes over a typed :class:`PassContext`, run by an instrumented
:class:`Pipeline` that records per-pass wall time and counters into a
JSON-exportable :class:`PipelineTrace`.  A content-keyed, size-bounded
:class:`ResultCache` backs expensive derived results such as
characterization campaign outcomes.

Quick tour::

    from repro.pipeline import PassContext, build_compile_pipeline

    pipe = build_compile_pipeline("xtalk")
    ctx = pipe.run(PassContext(device=dev, report=report, circuit=circ))
    print(ctx.duration, ctx.trace.format())
    print(ctx.trace.to_json(indent=2))
"""

from repro.pipeline.cache import (
    CacheStats,
    ResultCache,
    campaign_cache_key,
    device_fingerprint,
)
from repro.pipeline.context import PassContext
from repro.pipeline.passes import (
    DecomposePass,
    DisableSchedulePass,
    HardwareSchedulePass,
    LayoutPass,
    ParSchedulePass,
    Pass,
    RoutingPass,
    SCHEDULING_PASSES,
    SchedulingPass,
    SerialSchedulePass,
    XtalkSchedulePass,
    canonical_policy,
    compile_passes,
    scheduling_pass,
)
from repro.pipeline.runner import Pipeline, build_compile_pipeline
from repro.pipeline.trace import (
    PassSpan,
    PipelineTrace,
    SpanRecorder,
    TRACE_COLLECTION_SCHEMA,
    TRACE_SCHEMA,
    TraceCollector,
    emit_trace,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "campaign_cache_key",
    "device_fingerprint",
    "PassContext",
    "Pass",
    "LayoutPass",
    "RoutingPass",
    "DecomposePass",
    "SchedulingPass",
    "ParSchedulePass",
    "SerialSchedulePass",
    "DisableSchedulePass",
    "XtalkSchedulePass",
    "HardwareSchedulePass",
    "SCHEDULING_PASSES",
    "canonical_policy",
    "scheduling_pass",
    "compile_passes",
    "Pipeline",
    "build_compile_pipeline",
    "PassSpan",
    "PipelineTrace",
    "SpanRecorder",
    "TraceCollector",
    "TRACE_SCHEMA",
    "TRACE_COLLECTION_SCHEMA",
    "emit_trace",
]
