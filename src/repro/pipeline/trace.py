"""Compat shim: the trace core moved to :mod:`repro.obs.trace`.

Every name that lived here through PR 1/PR 2 — :class:`PassSpan`,
:class:`PipelineTrace`, :class:`SpanRecorder`, :class:`TraceCollector`,
:func:`emit_trace`, :data:`TRACE_SCHEMA`, :data:`TRACE_COLLECTION_SCHEMA`
— now re-exports from the unified observability layer.  Note that the
schema identifiers therefore point at v2 (``repro.obs.trace/v2``); use
:func:`repro.obs.read_trace` to read archived v1 documents.
"""

from repro.obs.trace import (  # noqa: F401
    TRACE_COLLECTION_SCHEMA,
    TRACE_COLLECTION_SCHEMA_V1,
    TRACE_SCHEMA,
    TRACE_SCHEMA_V1,
    PassSpan,
    PipelineTrace,
    Span,
    SpanRecorder,
    Trace,
    TraceCollector,
    current_span,
    emit_trace,
    read_trace,
    read_traces,
    span,
)

__all__ = [
    "TRACE_SCHEMA", "TRACE_SCHEMA_V1",
    "TRACE_COLLECTION_SCHEMA", "TRACE_COLLECTION_SCHEMA_V1",
    "Span", "PassSpan", "Trace", "PipelineTrace",
    "SpanRecorder", "TraceCollector",
    "span", "current_span", "emit_trace", "read_trace", "read_traces",
]
