"""Per-pass instrumentation: spans, counters, and JSON trace export.

Every :class:`~repro.pipeline.runner.Pipeline` run produces a
:class:`PipelineTrace` — an ordered list of :class:`PassSpan` records, one
per pass, each carrying the pass's wall time and whatever counters the pass
reported (SWAPs inserted, gate pairs serialized, SMT nodes explored, solve
seconds, ...).  The characterization campaign reuses the same structures via
:class:`SpanRecorder`, so compilation and characterization report per-stage
cost in one format.

Traces serialize to a stable JSON schema (:data:`TRACE_SCHEMA`).  A
:class:`TraceCollector` gathers every trace emitted while it is active —
the figure benchmarks use it to archive one aggregated JSON file per driver
under ``benchmarks/results/``.

This module deliberately imports nothing from the rest of :mod:`repro` so
any layer (core, rb, transpiler, experiments) can record spans without
creating an import cycle.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Schema identifier stamped into every exported trace document.
TRACE_SCHEMA = "repro.pipeline.trace/v1"

#: Schema identifier for a collection of traces (one benchmark driver run).
TRACE_COLLECTION_SCHEMA = "repro.pipeline.trace-collection/v1"


@dataclass
class PassSpan:
    """One pass's execution record: wall time plus counters."""

    name: str
    seconds: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    def add(self, counter: str, value: float = 1.0) -> None:
        self.counters[counter] = self.counters.get(counter, 0.0) + value

    def add_counters(self, counters: Dict[str, float]) -> None:
        """Accumulate a whole counter dict into this span.

        Used when a span fans work out to parallel tasks that each return
        their own counter dict (e.g. per-experiment ``rb.*`` counters): the
        span sums the contributions rather than overwriting them.
        """
        for name, value in counters.items():
            self.add(name, value)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "counters": dict(self.counters),
        }


@dataclass
class PipelineTrace:
    """An ordered record of every pass a pipeline ran."""

    pipeline: str
    spans: List[PassSpan] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(span.seconds for span in self.spans)

    @property
    def pass_names(self) -> List[str]:
        return [span.name for span in self.spans]

    def counters(self) -> Dict[str, float]:
        """Counters summed across all spans."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            for name, value in span.counters.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters().get(name, default)

    def span(self, name: str) -> PassSpan:
        for s in self.spans:
            if s.name == name:
                return s
        raise KeyError(f"no span named {name!r} in trace {self.pipeline!r}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "pipeline": self.pipeline,
            "total_seconds": self.total_seconds,
            "counters": self.counters(),
            "passes": [span.to_dict() for span in self.spans],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format(self) -> str:
        """A human-readable per-pass table (used by the examples)."""
        lines = [f"pipeline {self.pipeline!r}: "
                 f"{self.total_seconds * 1e3:.1f} ms total"]
        for span in self.spans:
            lines.append(f"  {span.name:24s} {span.seconds * 1e3:9.2f} ms")
            for counter in sorted(span.counters):
                value = span.counters[counter]
                shown = f"{value:g}"
                lines.append(f"    {counter:30s} {shown:>10s}")
        return "\n".join(lines)


class SpanRecorder:
    """Builds a :class:`PipelineTrace` span by span.

    Used by the :class:`~repro.pipeline.runner.Pipeline` runner and directly
    by stages that are not circuit passes (the characterization campaign).
    """

    def __init__(self, pipeline: str):
        self.trace = PipelineTrace(pipeline=pipeline)

    @contextmanager
    def span(self, name: str) -> Iterator[PassSpan]:
        record = PassSpan(name=name)
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - started
            self.trace.spans.append(record)

    def finish(self) -> PipelineTrace:
        """Emit the finished trace to any active collector and return it."""
        emit_trace(self.trace)
        return self.trace


# ----------------------------------------------------------------------
# trace collection
# ----------------------------------------------------------------------
_ACTIVE_COLLECTORS: List["TraceCollector"] = []


def emit_trace(trace: PipelineTrace) -> None:
    """Hand a finished trace to every active :class:`TraceCollector`."""
    for collector in _ACTIVE_COLLECTORS:
        collector.add(trace)


class TraceCollector:
    """Context manager that gathers every trace emitted while active.

    Nested collectors all receive every trace.  The aggregated document the
    benchmarks archive contains each individual trace plus fleet-wide
    counter totals::

        with TraceCollector() as traces:
            run_fig5(...)
        path.write_text(traces.to_json(indent=2))
    """

    def __init__(self) -> None:
        self.traces: List[PipelineTrace] = []

    def __enter__(self) -> "TraceCollector":
        _ACTIVE_COLLECTORS.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _ACTIVE_COLLECTORS.remove(self)

    def add(self, trace: PipelineTrace) -> None:
        self.traces.append(trace)

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def total_seconds(self) -> float:
        return sum(t.total_seconds for t in self.traces)

    def counters(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for trace in self.traces:
            for name, value in trace.counters().items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_COLLECTION_SCHEMA,
            "num_traces": len(self.traces),
            "total_seconds": self.total_seconds,
            "counters": self.counters(),
            "traces": [trace.to_dict() for trace in self.traces],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
