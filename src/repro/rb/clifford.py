"""Exact Clifford groups with CNOT-minimal gate decompositions.

A Clifford unitary is represented by its conjugation tableau: the images of
the generators ``X_0..X_{n-1}, Z_0..Z_{n-1}`` under ``P -> U P U†``.  Each
image is a Pauli stored as an (x|z) bit row plus a phase exponent ``e``
(the Pauli is ``i**e * X^x Z^z``; Hermiticity forces ``e ≡ x·z (mod 2)``).

The full group is enumerated by Dijkstra from the identity over the
generator set {H, S, Sdg} per qubit plus both CNOT orientations, with
lexicographic cost (CNOT count, total gates).  This yields

* the single-qubit group: 24 elements, no CNOTs;
* the two-qubit group: 11520 elements with the known CNOT-cost profile
  576 / 5184 / 5184 / 576 for 0/1/2/3 CNOTs — average exactly 1.5 CNOTs
  per Clifford, the divisor used when converting RB's error-per-Clifford
  into a CNOT error rate (Section 8.1).

Enumeration also gives exact inverses (algebraically, via the symplectic
inverse plus a Pauli sign fix) so RB sequences can always be closed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class CliffordTableau:
    """Conjugation tableau of an n-qubit Clifford unitary."""

    def __init__(self, mat: np.ndarray, phase: np.ndarray):
        # mat[i] is the (x|z) row of the image of generator i; generators
        # are ordered X_0..X_{n-1}, Z_0..Z_{n-1}.  phase[i] = e (mod 4).
        self.mat = np.asarray(mat, dtype=np.uint8) % 2
        self.phase = np.asarray(phase, dtype=np.uint8) % 4
        if self.mat.shape[0] != self.mat.shape[1] or self.mat.shape[0] % 2:
            raise ValueError("tableau matrix must be 2n x 2n")
        self.num_qubits = self.mat.shape[0] // 2
        self._swaps: Optional[np.ndarray] = None

    def _swap_matrix(self) -> np.ndarray:
        """Strict upper triangle of ``Z @ X^T`` — anticommutation swaps
        incurred when this tableau's generator images are multiplied in
        generator order.  Depends only on ``mat``, so it is computed once
        and reused across every :meth:`compose` with this tableau on the
        right (RB sequence products hit the same group elements over and
        over)."""
        if self._swaps is None:
            n = self.num_qubits
            self._swaps = np.triu(
                self.mat[:, n:].astype(np.int64)
                @ self.mat[:, :n].T.astype(np.int64),
                1,
            )
        return self._swaps

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "CliffordTableau":
        return cls(np.eye(2 * num_qubits, dtype=np.uint8),
                   np.zeros(2 * num_qubits, dtype=np.uint8))

    def key(self) -> bytes:
        """Canonical hashable form."""
        return self.mat.tobytes() + self.phase.tobytes()

    def is_identity(self) -> bool:
        n2 = 2 * self.num_qubits
        return bool(
            np.array_equal(self.mat, np.eye(n2, dtype=np.uint8))
            and not self.phase.any()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    # ------------------------------------------------------------------
    def _push_pauli(self, x: np.ndarray, z: np.ndarray, e: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """Image of the Pauli ``i**e X^x Z^z`` under this tableau.

        The input Pauli is the ordered product ``prod_j X_j^{x_j}`` times
        ``prod_j Z_j^{z_j}``; its image multiplies the corresponding
        generator images in the same order, tracking phases via
        ``X^a Z^b · X^c Z^d = (-1)^{b·c} X^{a+c} Z^{b+d}``.
        """
        n = self.num_qubits
        acc_x = np.zeros(n, dtype=np.uint8)
        acc_z = np.zeros(n, dtype=np.uint8)
        acc_e = e % 4
        for j in range(n):
            if x[j]:
                acc_x, acc_z, acc_e = _pauli_mult(
                    acc_x, acc_z, acc_e,
                    self.mat[j, :n], self.mat[j, n:], int(self.phase[j]),
                )
        for j in range(n):
            if z[j]:
                acc_x, acc_z, acc_e = _pauli_mult(
                    acc_x, acc_z, acc_e,
                    self.mat[n + j, :n], self.mat[n + j, n:], int(self.phase[n + j]),
                )
        return acc_x, acc_z, acc_e

    def compose(self, second: "CliffordTableau") -> "CliffordTableau":
        """Tableau of applying ``self`` first, then ``second``.

        As maps on Paulis: ``result(P) = second(self(P))``.

        Vectorized over all ``2n`` generator rows: the composed bit matrix
        is the GF(2) product ``self.mat @ second.mat``, and the composed
        phase of row ``i`` is its input phase, plus the phases of the
        generator images of ``second`` that row ``i`` selects, plus two for
        every anticommutation swap incurred while multiplying those images
        in generator order — a quadratic form over the strictly upper
        triangle of ``Z_2 @ X_2^T`` (valid mod 4 because ``2 (a mod 2) ≡
        2a``).  Bit-identical to multiplying the images one by one with
        :meth:`_push_pauli`.
        """
        if second.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        mat = (self.mat @ second.mat) % 2  # row sums <= 2n, no uint8 overflow
        selector = self.mat.astype(np.int64)
        swaps = second._swap_matrix()
        anticommutations = np.einsum("ij,jl,il->i", selector, swaps, selector)
        phase = (
            self.phase.astype(np.int64)
            + selector @ second.phase.astype(np.int64)
            + 2 * anticommutations
        ) % 4
        return CliffordTableau(mat, phase.astype(np.uint8))

    def inverse(self) -> "CliffordTableau":
        """Exact group inverse (symplectic inverse + Pauli sign fix)."""
        n = self.num_qubits
        omega = np.zeros((2 * n, 2 * n), dtype=np.uint8)
        omega[:n, n:] = np.eye(n, dtype=np.uint8)
        omega[n:, :n] = np.eye(n, dtype=np.uint8)
        inv_mat = (omega @ self.mat.T % 2 @ omega) % 2
        # Hermitian-positive phases: e = x·z (mod 4 representative in {0,1,2,3}).
        herm_phase = np.array(
            [int(np.dot(inv_mat[i, :n], inv_mat[i, n:]) % 4) for i in range(2 * n)],
            dtype=np.uint8,
        )
        candidate = CliffordTableau(inv_mat, herm_phase)
        # D = candidate(self(P)) has identity matrix and sign flips only;
        # composing the candidate with D's sign pattern yields the inverse.
        residual = self.compose(candidate)
        if not np.array_equal(residual.mat, np.eye(2 * n, dtype=np.uint8)):
            raise AssertionError("symplectic inverse failed")  # pragma: no cover
        fixed = candidate.compose(residual)
        return fixed

    # ------------------------------------------------------------------
    def apply_gate(self, name: str, qubits: Sequence[int]) -> "CliffordTableau":
        """Tableau of (self, then the named gate)."""
        return self.compose(_gate_tableau(self.num_qubits, name, tuple(qubits)))


def _pauli_mult(x1: np.ndarray, z1: np.ndarray, e1: int,
                x2: np.ndarray, z2: np.ndarray, e2: int) -> Tuple[np.ndarray, np.ndarray, int]:
    """(i^e1 X^x1 Z^z1) · (i^e2 X^x2 Z^z2) in canonical X-then-Z order."""
    sign_flips = int(np.dot(z1, x2)) % 2
    return (x1 ^ x2), (z1 ^ z2), (e1 + e2 + 2 * sign_flips) % 4


@lru_cache(maxsize=None)
def _gate_tableau(num_qubits: int, name: str, qubits: Tuple[int, ...]) -> CliffordTableau:
    """Tableau of an elementary Clifford gate embedded in n qubits."""
    n = num_qubits
    tab = CliffordTableau.identity(n)
    mat, phase = tab.mat, tab.phase

    def xrow(q: int) -> int:
        return q

    def zrow(q: int) -> int:
        return n + q

    if name == "h":
        (q,) = qubits
        # X -> Z, Z -> X, Y -> -Y (phase handled by e: Y = iXZ -> i Z X =
        # i (-1) X Z -> e flips by 2).
        mat[xrow(q), q] = 0
        mat[xrow(q), n + q] = 1
        mat[zrow(q), q] = 1
        mat[zrow(q), n + q] = 0
    elif name == "s":
        (q,) = qubits
        # X -> Y = i X Z ; Z -> Z.
        mat[xrow(q), n + q] = 1
        phase[xrow(q)] = 1
    elif name == "sdg":
        (q,) = qubits
        # X -> -Y ; Z -> Z.
        mat[xrow(q), n + q] = 1
        phase[xrow(q)] = 3
    elif name == "x":
        (q,) = qubits
        phase[zrow(q)] = 2  # Z -> -Z
    elif name == "z":
        (q,) = qubits
        phase[xrow(q)] = 2  # X -> -X
    elif name == "y":
        (q,) = qubits
        phase[xrow(q)] = 2
        phase[zrow(q)] = 2
    elif name == "cx":
        c, t = qubits
        # X_c -> X_c X_t ; X_t -> X_t ; Z_c -> Z_c ; Z_t -> Z_c Z_t.
        mat[xrow(c), t] = 1
        mat[zrow(t), n + c] = 1
    elif name == "cz":
        a, b = qubits
        # X_a -> X_a Z_b ; X_b -> X_b Z_a ; Z -> Z.
        mat[xrow(a), n + b] = 1
        mat[xrow(b), n + a] = 1
    elif name == "swap":
        a, b = qubits
        mat[xrow(a)], mat[xrow(b)] = mat[xrow(b)].copy(), mat[xrow(a)].copy()
        mat[zrow(a)], mat[zrow(b)] = mat[zrow(b)].copy(), mat[zrow(a)].copy()
    else:
        raise KeyError(f"gate {name!r} is not an elementary Clifford here")
    return CliffordTableau(mat, phase)


@dataclass(frozen=True)
class CliffordElement:
    """One group element: its tableau and a CNOT-minimal decomposition."""

    index: int
    tableau: CliffordTableau
    gates: Tuple[Tuple[str, Tuple[int, ...]], ...]

    @property
    def cnot_count(self) -> int:
        return sum(1 for name, _ in self.gates if name == "cx")


class CliffordGroup:
    """A fully enumerated Clifford group with lookup by tableau."""

    def __init__(self, num_qubits: int):
        if num_qubits not in (1, 2):
            raise ValueError("only the 1- and 2-qubit groups are enumerated")
        self.num_qubits = num_qubits
        self.elements: List[CliffordElement] = []
        self._index_of: Dict[bytes, int] = {}
        self._enumerate()

    # ------------------------------------------------------------------
    def _generators(self) -> List[Tuple[str, Tuple[int, ...]]]:
        gens: List[Tuple[str, Tuple[int, ...]]] = []
        for q in range(self.num_qubits):
            gens.extend([("h", (q,)), ("s", (q,)), ("sdg", (q,))])
        if self.num_qubits == 2:
            gens.extend([("cx", (0, 1)), ("cx", (1, 0))])
        return gens

    def _enumerate(self) -> None:
        gens = self._generators()
        gen_tabs = {
            g: _gate_tableau(self.num_qubits, g[0], g[1]) for g in gens
        }
        identity = CliffordTableau.identity(self.num_qubits)
        # Dijkstra with cost (cnot_count, gate_count): guarantees the
        # decompositions are CNOT-minimal.
        best: Dict[bytes, Tuple[int, int]] = {identity.key(): (0, 0)}
        entry: Dict[bytes, Tuple[Optional[bytes], Optional[Tuple[str, Tuple[int, ...]]], CliffordTableau]] = {
            identity.key(): (None, None, identity)
        }
        heap: List[Tuple[int, int, bytes]] = [(0, 0, identity.key())]
        while heap:
            cnots, ngates, key = heapq.heappop(heap)
            if (cnots, ngates) != best[key]:
                continue
            tab = entry[key][2]
            for gate in gens:
                nxt = tab.compose(gen_tabs[gate])
                nkey = nxt.key()
                ncost = (cnots + (1 if gate[0] == "cx" else 0), ngates + 1)
                if nkey not in best or ncost < best[nkey]:
                    best[nkey] = ncost
                    entry[nkey] = (key, gate, nxt)
                    heapq.heappush(heap, (ncost[0], ncost[1], nkey))

        for key in sorted(best):
            gates: List[Tuple[str, Tuple[int, ...]]] = []
            cursor = key
            while entry[cursor][1] is not None:
                parent, gate, _ = entry[cursor]
                gates.append(gate)
                cursor = parent
            gates.reverse()
            idx = len(self.elements)
            self.elements.append(
                CliffordElement(idx, entry[key][2], tuple(gates))
            )
            self._index_of[key] = idx

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, index: int) -> CliffordElement:
        return self.elements[index]

    def index_of(self, tableau: CliffordTableau) -> int:
        try:
            return self._index_of[tableau.key()]
        except KeyError:
            raise KeyError("tableau is not a group element") from None

    def element_of(self, tableau: CliffordTableau) -> CliffordElement:
        return self.elements[self.index_of(tableau)]

    def inverse_element(self, tableau: CliffordTableau) -> CliffordElement:
        """The group element implementing ``tableau``'s inverse."""
        return self.element_of(tableau.inverse())

    def sample(self, rng: np.random.Generator) -> CliffordElement:
        """Uniformly random group element — exact Clifford twirling."""
        return self.elements[int(rng.integers(len(self.elements)))]

    def average_cnot_count(self) -> float:
        return float(np.mean([el.cnot_count for el in self.elements]))

    def average_gate_count(self) -> float:
        """Mean physical gates per element (the 1q analogue of 1.5 CNOTs)."""
        return float(np.mean([len(el.gates) for el in self.elements]))


@lru_cache(maxsize=None)
def clifford_group(num_qubits: int) -> CliffordGroup:
    """Cached group instances (enumeration of the 2q group takes seconds)."""
    return CliffordGroup(num_qubits)
