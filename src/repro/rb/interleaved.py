"""Interleaved randomized benchmarking (Magesan et al., PRL 109, 080505).

Standard RB upper-bounds a CNOT's error by dividing the Clifford error by
the average CNOT count (1.5) — the paper's procedure.  Interleaved RB
measures the *specific* gate directly: run a reference RB decay, then a
second decay where the target gate is interleaved after every random
Clifford; the ratio of decays isolates the interleaved gate's error:

    r_gate = (1 - f_interleaved / f_reference) * (d - 1) / d

This module layers the protocol on the existing RB machinery and executor,
giving the characterization stack a second, sharper estimator that can be
cross-checked against the planted ground truth (and against the standard
estimator's upper bound).

Calibration note: the device model injects a uniform non-identity Pauli
with probability ``p`` per CNOT.  The *average gate infidelity* of that
channel is ``r = 0.8 p`` (a non-identity two-qubit Pauli has average
fidelity 1/5), and interleaved RB measures exactly ``r`` — so recovering
~0.8x the planted ``p`` is correct, not a bias.  The standard estimator's
per-CNOT number conventionally lands at ≈``p`` for this channel and is an
upper bound, as the paper notes (Section 8.1).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.device import Device
from repro.device.topology import Edge, normalize_edge
from repro.rb.clifford import CliffordElement, clifford_group
from repro.rb.executor import RBConfig, RBExecutor
from repro.rb.fitting import RBFit, fit_rb_decay
from repro.rb.sequences import RBSequence


@dataclass(frozen=True)
class InterleavedResult:
    """Reference and interleaved fits plus the derived gate error."""

    reference: RBFit
    interleaved: RBFit
    gate_error: float
    #: the standard-RB upper bound for comparison (reference / 1.5)
    standard_upper_bound: float


def _interleave_cnot(sequence: RBSequence, group) -> RBSequence:
    """Insert the CNOT after every random Clifford and fix the inverse.

    The CNOT (on local qubits (0, 1)) is itself a Clifford, so the
    composite still closes with a group inverse.
    """
    cnot = group.element_of(
        _cnot_tableau(group)
    )
    elements: List[CliffordElement] = []
    for el in sequence.elements:
        elements.append(el)
        elements.append(cnot)
    product = elements[0].tableau
    for el in elements[1:]:
        product = product.compose(el.tableau)
    inverse = group.inverse_element(product)
    return RBSequence(tuple(elements), inverse)


def _cnot_tableau(group):
    from repro.rb.clifford import _gate_tableau

    return _gate_tableau(2, "cx", (0, 1))


class InterleavedRB:
    """Runs reference + interleaved decays for one hardware CNOT."""

    def __init__(self, device: Device, day: int = 0,
                 config: Optional[RBConfig] = None,
                 seed: Optional[int] = None):
        self.device = device
        self.day = day
        # The interleaved decay necessarily builds bespoke sequences (the
        # CNOT is spliced in), so the reference decay must match the
        # per-protocol generation — sweep-shared sequences would compare
        # decays drawn from different sequence populations.
        config = config or RBConfig()
        self.config = dataclasses.replace(config, share_sequences=False)
        self._seed = seed if seed is not None else device.seed * 31 + day
        self._group = clifford_group(2)

    def run(self, gate: Sequence[int]) -> InterleavedResult:
        edge = normalize_edge(gate)
        cfg = self.config

        # Reference decay: plain independent RB on the gate.
        reference_exec = RBExecutor(self.device, day=self.day, config=cfg,
                                    seed=self._seed)
        reference = reference_exec.run_independent(edge)
        ref_fit = reference.fits[edge]

        # Interleaved decay: same machinery, sequences with the CNOT
        # inserted after every Clifford.  Reuse the executor's private
        # survival engine by monkey-free delegation: generate sequences
        # here and hand them to the survival evaluator.
        rng = np.random.default_rng(self._seed + 1)
        from repro.rb.sequences import generate_rb_sequence

        interleaved_exec = RBExecutor(self.device, day=self.day, config=cfg,
                                      seed=self._seed + 1)
        survivals: List[List[float]] = [[] for _ in cfg.lengths]
        for li, length in enumerate(cfg.lengths):
            for _ in range(cfg.num_sequences):
                base = generate_rb_sequence(self._group, length, rng)
                seq = _interleave_cnot(base, self._group)
                means = interleaved_exec._run_sequences([edge], {edge: seq})
                value = means[edge]
                if cfg.shots is not None:
                    value = rng.binomial(cfg.shots, value) / cfg.shots
                survivals[li].append(value)
        mean_survivals = [float(np.mean(v)) for v in survivals]
        int_fit = fit_rb_decay(cfg.lengths, mean_survivals, num_qubits=2)

        d = 4  # two-qubit dimension
        ratio = min(max(int_fit.decay / max(ref_fit.decay, 1e-9), 0.0), 1.0)
        gate_error = (1.0 - ratio) * (d - 1) / d
        return InterleavedResult(
            reference=ref_fit,
            interleaved=int_fit,
            gate_error=gate_error,
            standard_upper_bound=ref_fit.error_per_cnot(),
        )
