"""Noisy execution of (simultaneous) randomized benchmarking experiments.

One *experiment* drives a set of **units** in parallel, where a unit is a
single target (independent RB) or a pair of targets (SRB); a target is a
hardware CNOT edge or — for the original addressability protocol [16] — a
single qubit.  Bin-packed characterization (Optimization 2) simply passes
several units at once.

Noise model (all Clifford, so everything runs on the stabilizer simulator):

* every CNOT suffers a random two-qubit Pauli with its ground-truth
  conditional probability, conditioned on which *other* edges are driving
  a CNOT in the same aligned Clifford layer — the executor asks the same
  :class:`~repro.device.crosstalk.CrosstalkModel` the main backend uses, so
  SRB measures exactly the physics the scheduler will face;
* single-qubit gates suffer random single-qubit Paulis at the calibrated
  (tiny) rate;
* per layer, every participating qubit suffers Pauli-twirled decoherence
  (X/Y with probability gamma/4 each, Z with gamma/4 + the pure-dephasing
  rate) for the layer's duration.  The twirl keeps T1/T2 effects inside the
  Clifford formalism; RB cannot distinguish a channel from its twirl.

Survival probabilities are computed exactly per error realization and
averaged; optional binomial shot noise reproduces finite-trial scatter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.device import Device
from repro.device.topology import Edge
from repro.obs.registry import get_registry
from repro.parallel.seeding import stable_rng
from repro.rb.clifford import clifford_group
from repro.rb.fitting import RBFit, fit_rb_decay
from repro.rb.sequences import (
    RBSequence,
    generate_rb_sequence,
    shared_rb_sequence,
)
from repro.sim.channels import decay_probabilities
from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.unitaries import two_qubit_pauli_labels

_PAULI_2Q = two_qubit_pauli_labels()
_PAULI_1Q = ("X", "Y", "Z")


def _pauli_bits_n(letter: str, qubit: int, n: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(x_bits, z_bits) over ``n`` local qubits of a 1q Pauli on ``qubit``."""
    x = [0] * n
    z = [0] * n
    if letter in ("X", "Y"):
        x[qubit] = 1
    if letter in ("Z", "Y"):
        z[qubit] = 1
    return tuple(x), tuple(z)


def _label_bits(label: str) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """(x_bits, z_bits) of a 2-qubit Pauli label (position i = qubit i)."""
    x = tuple(1 if ch in ("X", "Y") else 0 for ch in label)
    z = tuple(1 if ch in ("Z", "Y") else 0 for ch in label)
    return x, z


#: The 15 non-identity two-qubit Paulis as (x_bits, z_bits).
_PAULI_2Q_BITS = tuple(_label_bits(label) for label in _PAULI_2Q)

#: The 3 non-identity single-qubit Paulis as 1-bit (x, z) tuples.
_PAULI_1Q_BITS = (((1,), (0,)), ((1,), (1,)), ((0,), (1,)))

#: The two-qubit Pauli support as one (15, 4) bit matrix, rows = (x|z).
_SUPPORT_2Q = np.array([[*x, *z] for x, z in _PAULI_2Q_BITS], dtype=np.uint8)


_SUPPORT_1Q_CACHE: Dict[Tuple[int, int], np.ndarray] = {}


def _support_1q(n: int, local: int) -> np.ndarray:
    """The X/Y/Z support on one local qubit as a (3, 2n) bit matrix."""
    key = (n, local)
    if key not in _SUPPORT_1Q_CACHE:
        rows = [
            [*x, *z]
            for x, z in (_pauli_bits_n(ch, local, n) for ch in _PAULI_1Q)
        ]
        _SUPPORT_1Q_CACHE[key] = np.array(rows, dtype=np.uint8)
    return _SUPPORT_1Q_CACHE[key]


def _walsh_factors(support: np.ndarray, x_maps: np.ndarray,
                   probs: np.ndarray, signs: np.ndarray) -> np.ndarray:
    """Per-site survival factors for one class of error sites, batched.

    ``support`` is the (s, 2n) bit matrix of the Paulis a site draws from
    uniformly, ``x_maps`` the (g, 2n, n) suffix maps taking injected (x|z)
    bits to final x bits, ``probs`` the (g,) per-site firing probabilities.
    Returns the (g, 2**n) factors multiplying the Walsh characteristic
    function ``chi``.
    """
    out_x = (support @ x_maps) % 2  # (g, s, n)
    idx = out_x[..., 0].astype(np.intp)
    if x_maps.shape[2] == 2:
        idx = idx + 2 * out_x[..., 1]
    dim = signs.shape[0]
    q_dist = (idx[..., None] == np.arange(dim)).mean(axis=1)  # (g, dim)
    return (1.0 - probs)[:, None] + probs[:, None] * (q_dist @ signs)

#: Walsh character tables over Z_2^n for n = 1, 2: sign[y][x] = (-1)^(y.x)
_WALSH = {
    1: np.array([[1, 1], [1, -1]], dtype=float),
    2: np.array(
        [[1, 1, 1, 1], [1, -1, 1, -1], [1, 1, -1, -1], [1, -1, -1, 1]],
        dtype=float,
    ),
}

#: Memoized suffix symplectic matrices, keyed by a shared sequence's
#: ``cache_token`` (plus the decoherence flag, which changes the flattened
#: gate list).  Shared sequences recur across every experiment of a pair
#: sweep — and across the fresh per-task executors a campaign pool builds —
#: so their 2n x 2n GF(2) suffix products are computed once per process.
_SUFFIX_CACHE: Dict[Tuple, List[np.ndarray]] = {}
_SUFFIX_CACHE_LIMIT = 16384


def _suffix_matrices(n: int, gates: List[Tuple[str, Tuple[int, ...], int]],
                     token, include_decoherence: bool) -> List[np.ndarray]:
    """Suffix symplectic matrices for one target's flattened gate list.

    ``suffix[t]`` maps the (x|z) bits of a Pauli injected *after* gate
    ``t-1`` to its final x bits: the x-part of a pushed Pauli is linear in
    the input bits over GF(2), phases never matter for survival, so the
    whole suffix reduces to a 2n x 2n bit matrix composed by matmul.
    Results are memoized under ``token`` when the sequence came from
    :func:`~repro.rb.sequences.shared_rb_sequence`.
    """
    from repro.rb.clifford import _gate_tableau

    key = None
    if token is not None:
        key = (token, include_decoherence)
        cached = _SUFFIX_CACHE.get(key)
        if cached is not None:
            return cached
    suffix_mats: List[Optional[np.ndarray]] = [None] * (len(gates) + 1)
    suffix_mats[len(gates)] = np.eye(2 * n, dtype=np.uint8)
    for t in range(len(gates) - 1, -1, -1):
        name, qs, _ = gates[t]
        if name == "__idle__":
            suffix_mats[t] = suffix_mats[t + 1]
        else:
            gate_mat = _gate_tableau(n, name, qs).mat
            suffix_mats[t] = (gate_mat @ suffix_mats[t + 1]) % 2
    if key is not None:
        if len(_SUFFIX_CACHE) >= _SUFFIX_CACHE_LIMIT:
            _SUFFIX_CACHE.clear()
        _SUFFIX_CACHE[key] = suffix_mats
    return suffix_mats


Target = Tuple[int, ...]  # one benchmarked gate: (q,) or a coupling edge


def normalize_target(gate: Sequence[int]) -> Target:
    """Canonical form of a benchmark target: a qubit or a coupling edge."""
    target = tuple(sorted(int(q) for q in gate))
    if len(target) not in (1, 2):
        raise ValueError(f"targets are single qubits or edges, got {gate}")
    if len(target) == 2 and target[0] == target[1]:
        raise ValueError(f"degenerate edge {gate}")
    return target


#: Backwards-compatible alias (pre-parallel name).
_normalize_target = normalize_target


@dataclass(frozen=True)
class RBConfig:
    """Experiment sizing.

    The paper uses 100 sequences x 1024 trials with up to 40 Cliffords;
    the defaults here are scaled down so full-device campaigns run in
    minutes on a laptop, while ``paper()`` restores the published sizing.

    ``estimate`` picks the survival estimator:

    * ``"exact"`` (default) — for each random sequence, the survival
      probability is computed *exactly* over the error randomness: every
      injected Pauli propagates through the suffix Clifford tableau, the
      final state is a Pauli-displaced basis state, and the displacement's
      x-part distribution is an XOR-convolution over Z_2^2 evaluated with
      a 4-point Walsh-Hadamard characteristic function.  Zero Monte-Carlo
      variance; only sequence sampling (and optional shot) noise remains.
      Error sites are batched per class (CNOT, single-qubit, idle) and
      evaluated as one numpy Walsh-character product per class.
    * ``"exact-scalar"`` — the pre-vectorization reference implementation
      of the exact estimator: identical mathematics, one Python loop
      iteration per gate and error site.  Kept as the parity baseline the
      regression tests (and the perf benchmark's serial leg) compare
      against.
    * ``"sampled"`` — reference implementation: Monte-Carlo error
      realizations simulated gate by gate on the stabilizer simulator
      (``samples_per_sequence`` realizations per sequence).

    ``share_sequences`` (default on) draws each experiment's random
    Cliffords from :func:`~repro.rb.sequences.shared_rb_sequence` — one
    stably generated sequence per (length, repeat index, slot, sweep)
    reused across every experiment of the pair sweep — instead of
    regenerating from the per-experiment stream.  Survival statistics are
    unchanged (sequences are still uniform random Cliffords); only the
    generation cost is amortized.  Turn it off to reproduce the
    historical independent-sequences protocol (the perf benchmark's
    serial leg does, as the honest pre-change configuration).
    """

    lengths: Tuple[int, ...] = (2, 4, 8, 16, 28, 40)
    num_sequences: int = 20
    samples_per_sequence: int = 12  # used by the "sampled" estimator only
    estimate: str = "exact"
    shots: Optional[int] = None  # None = exact survival (no shot noise)
    share_sequences: bool = True
    #: Charge T1/T2 for the time a unit idles waiting for the longest unit
    #: of an aligned layer.  Off by default: on hardware, simultaneous RB
    #: sequences free-run without alignment barriers, and decoherence during
    #: gates is already part of what a calibrated gate error rate measures.
    include_decoherence: bool = False
    include_single_qubit_errors: bool = True

    @classmethod
    def fast(cls) -> "RBConfig":
        return cls(lengths=(2, 8, 20), num_sequences=8)

    @classmethod
    def paper(cls) -> "RBConfig":
        """The published protocol: 100 sequences x 1024 trials.

        Shot sampling on top of the exact per-sequence survival reproduces
        the statistics a real 1024-trial experiment would see.
        """
        return cls(lengths=(2, 5, 10, 20, 30, 40), num_sequences=100,
                   shots=1024)

    def executions(self) -> int:
        """Hardware executions one experiment would take on a real device."""
        shots = self.shots if self.shots is not None else 1024
        return len(self.lengths) * self.num_sequences * shots


@dataclass
class SRBResult:
    """Per-edge survival curves and fits from one experiment set."""

    lengths: Tuple[int, ...]
    survivals: Dict[Target, List[float]]  # mean survival per length
    fits: Dict[Target, RBFit]
    context: Dict[Target, Tuple[Target, ...]]  # simultaneously driven targets

    def error_rate(self, gate: Sequence[int]) -> float:
        """Fitted physical-gate error rate for a target.

        Two-qubit targets: error per CNOT (Clifford error / 1.5, the
        paper's procedure).  Single-qubit targets: error per physical gate
        (Clifford error / the 1q group's average decomposition length).
        """
        target = _normalize_target(gate)
        fit = self.fits[target]
        if len(target) == 2:
            return fit.error_per_cnot()
        avg_gates = clifford_group(1).average_gate_count()
        return fit.error_per_clifford / max(avg_gates, 1.0)


class RBExecutor:
    """Runs RB/SRB experiments against a device's hidden noise model.

    Seeding is *stable*: every experiment derives its RNG from a
    :class:`~numpy.random.SeedSequence` keyed on the device fingerprint,
    the day, the executor seed, and the experiment's target tuple — never
    from a shared stream.  Two executors with the same construction
    arguments therefore measure identical values for an experiment no
    matter in which order (or in which worker process) experiments run.
    """

    def __init__(self, device: Device, day: int = 0,
                 config: Optional[RBConfig] = None, seed: Optional[int] = None,
                 faults=None):
        self.device = device
        self.day = day
        self.config = config or RBConfig()
        self.base_seed = seed if seed is not None else device.seed * 104729 + day
        #: Optional :class:`~repro.resilience.faults.FaultInjector` for the
        #: in-process ``"rb.experiment"`` fault site (the campaign's pool
        #: path instead ships directives through the parallel engine, so
        #: attempt counting survives process boundaries).
        self.faults = faults
        # Fallback stream for direct private-API callers (interleaved RB);
        # run_units never consumes it.
        self._rng = np.random.default_rng(self.base_seed)
        from repro.pipeline.cache import device_fingerprint

        self._fingerprint = device_fingerprint(device)
        #: Cumulative per-executor cost counters, in the same namespace the
        #: pipeline passes use; the characterization campaign snapshots
        #: these around each stage to report per-stage cost.
        self.counters: Dict[str, float] = {
            "rb.experiments": 0.0,
            "rb.units": 0.0,
            "rb.targets": 0.0,
            "rb.sequences": 0.0,
            "rb.seconds": 0.0,
        }

    def _experiment_rng(self, targets: Sequence[Target]) -> np.random.Generator:
        """The stable per-experiment stream (see class docstring)."""
        return stable_rng("rb.experiment", self._fingerprint, self.day,
                          self.base_seed, sorted(targets))

    # ------------------------------------------------------------------
    def run_units(self, units: Sequence[Sequence[Sequence[int]]]) -> SRBResult:
        """Run one experiment driving all ``units`` in parallel.

        ``units`` is a list of target tuples, e.g. ``[((0, 1), (2, 3)),
        ((6, 7),)]`` — one SRB pair and one independent RB unit.  Targets
        are coupling edges or single qubits (``((4,),)`` runs 1-qubit RB —
        the original simultaneous-RB "addressability" protocol [16]);
        targets across all units must be disjoint in qubits.
        """
        started = time.perf_counter()
        targets: List[Target] = []
        for unit in units:
            for gate in unit:
                targets.append(_normalize_target(gate))
        if len(set(targets)) != len(targets):
            raise ValueError("a target appears twice in the experiment")
        used_qubits = [q for t in targets for q in t]
        if len(set(used_qubits)) != len(used_qubits):
            raise ValueError("experiment units overlap in qubits")
        if self.faults is not None:
            # Fires after validation but before any measurement work, like
            # a queued experiment dying; the injector tracks attempts per
            # (site, key) so a retried call eventually succeeds.
            self.faults.check(
                "rb.experiment",
                (self._fingerprint, self.day, self.base_seed, sorted(targets)),
            )

        cfg = self.config
        rng = self._experiment_rng(targets)
        sorted_targets = sorted(targets)
        seed_class = (self._fingerprint, self.day, self.base_seed)
        survivals: Dict[Target, List[List[float]]] = {
            t: [[] for _ in cfg.lengths] for t in targets
        }
        for li, length in enumerate(cfg.lengths):
            for si in range(cfg.num_sequences):
                if cfg.share_sequences:
                    # Amortized path: one stably generated sequence per
                    # (n, length, repeat, slot) reused across the sweep;
                    # the experiment stream is only consumed for shot noise.
                    seqs = {
                        t: shared_rb_sequence(
                            len(t), length, si, sorted_targets.index(t),
                            seed_class,
                        )
                        for t in targets
                    }
                else:
                    seqs = {
                        t: generate_rb_sequence(
                            clifford_group(len(t)), length, rng
                        )
                        for t in targets
                    }
                means = self._run_sequences(targets, seqs, rng)
                for t in targets:
                    value = means[t]
                    if cfg.shots is not None:
                        value = rng.binomial(cfg.shots, value) / cfg.shots
                    survivals[t][li].append(value)

        mean_survivals = {
            t: [float(np.mean(vals)) for vals in survivals[t]] for t in targets
        }
        fits = {
            t: fit_rb_decay(cfg.lengths, mean_survivals[t],
                            num_qubits=len(t))
            for t in targets
        }
        context = {t: tuple(o for o in targets if o != t) for t in targets}
        seconds = time.perf_counter() - started
        sequences = float(len(targets) * len(cfg.lengths) * cfg.num_sequences)
        self.counters["rb.experiments"] += 1.0
        self.counters["rb.units"] += float(len(units))
        self.counters["rb.targets"] += float(len(targets))
        self.counters["rb.sequences"] += sequences
        self.counters["rb.seconds"] += seconds
        # Process-wide metrics too; inside a pool worker these land in the
        # worker-local registry and are shipped back as per-task deltas.
        registry = get_registry()
        registry.inc("rb.experiments")
        registry.inc("rb.sequences", sequences)
        registry.observe("rb.experiment_seconds", seconds)
        return SRBResult(cfg.lengths, mean_survivals, fits, context)

    def run_independent(self, gate: Sequence[int]) -> SRBResult:
        """Standard RB on one target (edge or qubit), nothing else driven."""
        return self.run_units([(gate,)])

    def run_pair(self, gate_a: Sequence[int], gate_b: Sequence[int]) -> SRBResult:
        """Simultaneous RB on a pair of gates: yields E(a|b) and E(b|a)."""
        return self.run_units([(gate_a, gate_b)])

    # ------------------------------------------------------------------
    def _run_sequences(self, edges: List[Edge],
                       seqs: Dict[Edge, RBSequence],
                       rng: Optional[np.random.Generator] = None
                       ) -> Dict[Edge, float]:
        """Mean survival per edge over the error randomness."""
        if self.config.estimate == "exact":
            return self._run_sequences_exact(edges, seqs)
        if self.config.estimate == "exact-scalar":
            return self._run_sequences_exact_scalar(edges, seqs)
        if self.config.estimate == "sampled":
            return self._run_sequences_sampled(edges, seqs,
                                               rng if rng is not None
                                               else self._rng)
        raise ValueError(f"unknown estimate mode {self.config.estimate!r}")

    def _sequence_context(self, targets: List[Target],
                          seqs: Dict[Target, RBSequence]):
        """Per-layer structure shared by both estimators: aligned layers,
        which edges drive CNOTs per layer, the resulting conditional CNOT
        error rates, and per-layer idle durations.

        Single-qubit targets never condition anyone's error rates (the
        paper's observation that 1q gates are 10x cleaner, and the device
        model's ground truth); only two-qubit targets participate in the
        crosstalk bookkeeping.
        """
        cfg = self.config
        cal = self.device.calibration(self.day)
        crosstalk = self.device.crosstalk

        layers = {t: seqs[t].layers() for t in targets}
        depth = max(len(l) for l in layers.values())
        two_qubit_targets = [t for t in targets if len(t) == 2]

        # drives[i, k]: does two-qubit target i fire a CNOT in layer k?
        drives = np.zeros((len(two_qubit_targets), depth), dtype=bool)
        for i, t in enumerate(two_qubit_targets):
            target_layers = layers[t]
            drives[i, :len(target_layers)] = [
                any(name == "cx" for name, _ in layer)
                for layer in target_layers
            ]
        # The conditional rate of target i depends only on *which* other
        # targets drive alongside it, so layers sharing a driving pattern
        # share one crosstalk-model lookup.
        pattern_rate: Dict[Tuple[int, bytes], float] = {}
        cx_error: List[Dict[Target, float]] = []
        for k in range(depth):
            pattern = drives[:, k].tobytes()
            drivers = np.flatnonzero(drives[:, k])
            rates = {}
            for i, t in enumerate(two_qubit_targets):
                key = (i, pattern)
                if key not in pattern_rate:
                    partners = [two_qubit_targets[j] for j in drivers if j != i]
                    pattern_rate[key] = crosstalk.worst_conditional_error(
                        t, partners, cal, self.day
                    )
                rates[t] = pattern_rate[key]
            cx_error.append(rates)

        unit_duration: Dict[Target, List[float]] = {t: [] for t in targets}
        layer_duration: List[float] = []
        if cfg.include_decoherence:
            durations = np.zeros((len(targets), depth))
            single = cal.durations.single_qubit
            for i, t in enumerate(targets):
                cx_duration = (
                    cal.durations.cx_duration(*t) if len(t) == 2 else 0.0
                )
                for k, layer in enumerate(layers[t]):
                    cx_count = sum(1 for name, _ in layer if name == "cx")
                    durations[i, k] = (
                        cx_count * cx_duration
                        + (len(layer) - cx_count) * single
                    )
            layer_duration = durations.max(axis=0).tolist()
            unit_duration = {
                t: durations[i].tolist() for i, t in enumerate(targets)
            }
        return layers, depth, cx_error, unit_duration, layer_duration

    # ------------------------------------------------------------------
    # exact estimator
    # ------------------------------------------------------------------
    def _run_sequences_exact(self, targets: List[Target],
                             seqs: Dict[Target, RBSequence]) -> Dict[Target, float]:
        """Exact expected survival per target (see :class:`RBConfig`).

        Each target's n-qubit system (n = 1 or 2) evolves independently
        (error Paulis are local to the target; only their *rates* depend on
        the partners), so the survival factorizes per target.  For one
        target, the final state under a given error realization is
        ``P |0..0>`` with ``P`` the product of all injected Paulis
        conjugated by their suffix Cliffords; survival is the indicator
        that ``P`` has no X/Y component.  The x-part of each (independent)
        error site is a random element of Z_2^n, so the XOR-sum's point
        probability at 0 is the average of the product of per-site
        characteristic values over the 2^n Walsh characters.

        Error sites sharing a Pauli support (all CNOTs; all 1q gates on one
        local qubit; all idle X/Y/Z kicks on one local qubit) are evaluated
        as a single batched Walsh-character product — see
        :func:`_walsh_factors`.  The scalar reference lives in
        :meth:`_run_sequences_exact_scalar`.
        """
        cfg = self.config
        cal = self.device.calibration(self.day)
        layers, depth, cx_error, unit_duration, layer_duration = \
            self._sequence_context(targets, seqs)

        out: Dict[Target, float] = {}
        for e in targets:
            n = len(e)
            signs = _WALSH[n]
            idle_span = tuple(range(n))
            # Flatten this target's gates with their layer index.
            gates: List[Tuple[str, Tuple[int, ...], int]] = []
            for k in range(len(layers[e])):
                for name, qs in layers[e][k]:
                    gates.append((name, qs, k))
                if cfg.include_decoherence:
                    gates.append(("__idle__", idle_span, k))
            suffix_mats = _suffix_matrices(
                n, gates, seqs[e].cache_token, cfg.include_decoherence
            )

            # Partition error sites into support classes; each class
            # becomes one batched characteristic-function product.
            cx_positions: List[int] = []
            one_q_positions: Dict[int, List[int]] = {}
            idle_sites: Dict[int, List[Tuple[int, float]]] = {}
            for t, (name, qs, k) in enumerate(gates):
                if name == "cx":
                    cx_positions.append(t)
                elif name == "__idle__":
                    idle = layer_duration[k] - unit_duration[e][k]
                    if idle > 1e-9:
                        for local in range(n):
                            idle_sites.setdefault(local, []).append((t, idle))
                elif cfg.include_single_qubit_errors:
                    one_q_positions.setdefault(qs[0], []).append(t)

            chi = np.ones(2 ** n)
            if cx_positions:
                probs = np.array(
                    [cx_error[gates[t][2]][e] for t in cx_positions]
                )
                keep = probs > 0.0
                if keep.any():
                    x_maps = np.stack(
                        [suffix_mats[t + 1][:, :n] for t, ok
                         in zip(cx_positions, keep) if ok]
                    )
                    factors = _walsh_factors(_SUPPORT_2Q, x_maps,
                                             probs[keep], signs)
                    chi *= factors.prod(axis=0)
            for local, positions in one_q_positions.items():
                prob = cal.single_qubit_error[e[local]]
                if prob <= 0.0:
                    continue
                x_maps = np.stack([suffix_mats[t + 1][:, :n]
                                   for t in positions])
                factors = _walsh_factors(
                    _support_1q(n, local), x_maps,
                    np.full(len(positions), prob), signs,
                )
                chi *= factors.prod(axis=0)
            for local, sites in idle_sites.items():
                q_device = e[local]
                gammas = np.array([
                    decay_probabilities(idle, cal.t1[q_device],
                                        cal.t2[q_device])
                    for _, idle in sites
                ])
                p_x = gammas[:, 0] / 4.0
                p_z = gammas[:, 0] / 4.0 + gammas[:, 1]
                x_maps = np.stack([suffix_mats[t + 1][:, :n]
                                   for t, _ in sites])
                support = _support_1q(n, local)
                for letter, probs in (("X", p_x), ("Y", p_x), ("Z", p_z)):
                    row = support[_PAULI_1Q.index(letter):][:1]
                    factors = _walsh_factors(row, x_maps, probs, signs)
                    chi *= factors.prod(axis=0)
            out[e] = float(np.clip(chi.mean(), 0.0, 1.0))
        return out

    def _run_sequences_exact_scalar(
            self, targets: List[Target],
            seqs: Dict[Target, RBSequence]) -> Dict[Target, float]:
        """Scalar reference for :meth:`_run_sequences_exact`.

        The pre-vectorization implementation, retained verbatim: one loop
        iteration per gate and per error site.  The parity regression test
        pins the vectorized path to this one at 1e-12.
        """
        from repro.rb.clifford import _gate_tableau

        cfg = self.config
        cal = self.device.calibration(self.day)
        layers, depth, cx_error, unit_duration, layer_duration = \
            self._sequence_context(targets, seqs)

        out: Dict[Target, float] = {}
        for e in targets:
            n = len(e)
            signs = _WALSH[n]
            idle_span = tuple(range(n))
            gates: List[Tuple[str, Tuple[int, ...], int]] = []
            for k in range(len(layers[e])):
                for name, qs in layers[e][k]:
                    gates.append((name, qs, k))
                if cfg.include_decoherence:
                    gates.append(("__idle__", idle_span, k))
            suffix_mats = [None] * (len(gates) + 1)
            suffix_mats[len(gates)] = np.eye(2 * n, dtype=np.uint8)
            for t in range(len(gates) - 1, -1, -1):
                name, qs, _ = gates[t]
                if name == "__idle__":
                    suffix_mats[t] = suffix_mats[t + 1]
                else:
                    gate_mat = _gate_tableau(n, name, qs).mat
                    suffix_mats[t] = (gate_mat @ suffix_mats[t + 1]) % 2

            chi = np.ones(2 ** n)
            for t, (name, qs, k) in enumerate(gates):
                sites = self._error_sites(name, qs, k, e, cx_error,
                                          unit_duration, layer_duration, cal)
                x_map = suffix_mats[t + 1][:, :n]  # (x|z) bits -> out x bits
                for pauli_bits, prob in sites:
                    if prob <= 0.0:
                        continue
                    bits = np.asarray(
                        [(*x, *z) for x, z in pauli_bits], dtype=np.uint8
                    )
                    out_x = (bits @ x_map) % 2
                    idx = out_x[:, 0]
                    if n == 2:
                        idx = idx + 2 * out_x[:, 1]
                    q_dist = np.bincount(idx, minlength=2 ** n) / len(pauli_bits)
                    chi *= (1.0 - prob) + prob * (signs @ q_dist)
            out[e] = float(np.clip(chi.mean(), 0.0, 1.0))
        return out

    def _error_sites(self, name, qs, layer, target, cx_error, unit_duration,
                     layer_duration, cal):
        """Error channels attached to one flattened gate position.

        Returns a list of ``(pauli_support, probability)`` where
        ``pauli_support`` is the uniform set of (x_bits, z_bits) the error
        draws from, over the target's local qubits.
        """
        cfg = self.config
        n = len(target)
        if name == "cx":
            return [(_PAULI_2Q_BITS, cx_error[layer][target])]
        if name == "__idle__":
            if not cfg.include_decoherence:
                return []
            idle = layer_duration[layer] - unit_duration[target][layer]
            if idle <= 1e-9:
                return []
            sites = []
            for local in range(n):
                q_device = target[local]
                gamma, p_z_pure = decay_probabilities(
                    idle, cal.t1[q_device], cal.t2[q_device]
                )
                p_x = p_y = gamma / 4.0
                p_z = gamma / 4.0 + p_z_pure
                # three mutually exclusive Paulis; encode as three sites
                # with single-element supports (independent-site
                # approximation, exact to first order like the sampler)
                sites.append(([_pauli_bits_n("X", local, n)], p_x))
                sites.append(([_pauli_bits_n("Y", local, n)], p_y))
                sites.append(([_pauli_bits_n("Z", local, n)], p_z))
            return sites
        if cfg.include_single_qubit_errors:
            p = cal.single_qubit_error[target[qs[0]]]
            labels = [_pauli_bits_n(ch, qs[0], n) for ch in "XYZ"]
            return [(labels, p)]
        return []

    # ------------------------------------------------------------------
    # sampled (reference) estimator
    # ------------------------------------------------------------------
    def _run_sequences_sampled(self, edges: List[Edge],
                               seqs: Dict[Edge, RBSequence],
                               rng: np.random.Generator) -> Dict[Edge, float]:
        """Monte-Carlo mean survival per edge over error realizations."""
        cfg = self.config
        cal = self.device.calibration(self.day)

        qubit_map: Dict[int, int] = {}
        for e in edges:
            for q in e:
                qubit_map.setdefault(q, len(qubit_map))
        num_sim_qubits = len(qubit_map)

        layers, depth, cx_error, unit_duration, layer_duration = \
            self._sequence_context(edges, seqs)

        totals = {e: 0.0 for e in edges}
        for _ in range(cfg.samples_per_sequence):
            sim = StabilizerSimulator(num_sim_qubits, rng=rng)
            for k in range(depth):
                for e in edges:
                    if k >= len(layers[e]):
                        continue
                    local = tuple(qubit_map[q] for q in e)
                    for name, qs in layers[e][k]:
                        mapped = tuple(local[q] for q in qs)
                        sim.apply_gate(name, mapped)
                        if name == "cx":
                            p = cx_error[k][e]
                            if p > 0.0 and rng.random() < p:
                                label = _PAULI_2Q[rng.integers(len(_PAULI_2Q))]
                                sim.apply_pauli(label, mapped)
                        elif cfg.include_single_qubit_errors:
                            p = cal.single_qubit_error[e[qs[0]]]
                            if p > 0.0 and rng.random() < p:
                                label = _PAULI_1Q[rng.integers(3)]
                                sim.apply_pauli(label, (mapped[0],))
                if cfg.include_decoherence:
                    for e in edges:
                        if k >= len(layers[e]):
                            continue
                        idle = layer_duration[k] - unit_duration[e][k]
                        if idle > 1e-9:
                            for q in e:
                                self._inject_decay(sim, rng, qubit_map[q],
                                                   idle, cal.t1[q], cal.t2[q])
            for e in edges:
                outcome = {qubit_map[q]: 0 for q in e}
                totals[e] += sim.probability_of_outcome(outcome)
        return {e: totals[e] / cfg.samples_per_sequence for e in edges}

    # ------------------------------------------------------------------
    def _inject_decay(self, sim: StabilizerSimulator, rng: np.random.Generator,
                      qubit: int, duration: float, t1: float, t2: float) -> None:
        gamma, p_z_pure = decay_probabilities(duration, t1, t2)
        # Pauli twirl of amplitude damping: X, Y with gamma/4; the phase
        # component contributes gamma/4 plus the pure-dephasing Z rate.
        p_x = p_y = gamma / 4.0
        p_z = gamma / 4.0 + p_z_pure
        r = rng.random()
        if r < p_x:
            sim.apply_pauli("X", (qubit,))
        elif r < p_x + p_y:
            sim.apply_pauli("Y", (qubit,))
        elif r < p_x + p_y + p_z:
            sim.apply_pauli("Z", (qubit,))
