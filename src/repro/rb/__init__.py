"""Randomized benchmarking substrate (the role of Qiskit Ignis).

Crosstalk characterization rests on measuring CNOT error rates with
two-qubit randomized benchmarking (RB) and *simultaneous* RB (SRB) on gate
pairs (Section 4.2).  This package implements the full protocol from
scratch:

* :mod:`repro.rb.clifford` — exact Clifford groups (24 single-qubit and
  11520 two-qubit elements) enumerated by Dijkstra over generators, giving
  every element a CNOT-minimal gate decomposition (average 1.5 CNOTs per
  two-qubit Clifford, the figure the paper divides by) and exact inverses;
* :mod:`repro.rb.sequences` — RB sequence construction: ``m`` random
  Cliffords followed by the group inverse, so ideal executions return to
  |00>;
* :mod:`repro.rb.executor` — noisy execution of (possibly parallel) RB
  sequences on the stabilizer simulator, pulling conditional error rates
  from the device ground truth through the same overlap analysis the main
  backend uses;
* :mod:`repro.rb.fitting` — least-squares fit of survival curves to
  ``A * f**m + B`` and conversion to error-per-Clifford / error-per-CNOT.
"""

from repro.rb.clifford import CliffordTableau, CliffordGroup, clifford_group
from repro.rb.sequences import RBSequence, generate_rb_sequence
from repro.rb.fitting import RBFit, fit_rb_decay, error_per_clifford_to_cnot
from repro.rb.executor import RBExecutor, SRBResult

__all__ = [
    "CliffordTableau",
    "CliffordGroup",
    "clifford_group",
    "RBSequence",
    "generate_rb_sequence",
    "RBFit",
    "fit_rb_decay",
    "error_per_clifford_to_cnot",
    "RBExecutor",
    "SRBResult",
]
