"""RB sequence construction.

An RB sequence of length ``m`` is ``m`` uniformly random Clifford elements
followed by the group inverse of their product, so an ideal execution is
the identity and the survival probability (returning to |0..0>) decays as
``A f**m + B`` under noise.  Sequences are built on local qubits 0..n-1 and
mapped onto device qubits when executed.

Two generation entry points:

* :func:`generate_rb_sequence` — sample from a caller-supplied stream
  (the historical per-experiment path);
* :func:`shared_rb_sequence` — sample from a stable stream keyed on
  ``(num_qubits, length, seq_index, slot, seed_class)`` and memoize the
  result in a module-level cache, so a characterization sweep that runs
  hundreds of experiments with the same sizing generates each sequence
  *once* and reuses it everywhere (including across the fresh per-task
  executors a campaign pool creates within one worker process).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.seeding import stable_rng
from repro.rb.clifford import CliffordElement, CliffordGroup, clifford_group

GateList = Tuple[Tuple[str, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class RBSequence:
    """One random sequence: the sampled Cliffords plus the closing inverse.

    ``cache_token`` is set (to the stable generation key) only on
    sequences produced by :func:`shared_rb_sequence`; downstream
    estimators use it to memoize per-sequence derived structures (suffix
    symplectic matrices).  It never participates in equality.
    """

    elements: Tuple[CliffordElement, ...]
    inverse: CliffordElement
    cache_token: Optional[Tuple] = field(default=None, compare=False)

    @property
    def length(self) -> int:
        """RB length ``m`` (number of random Cliffords, inverse excluded)."""
        return len(self.elements)

    def layers(self) -> Tuple[GateList, ...]:
        """Per-Clifford gate layers (local qubit indices), inverse last.

        The executor aligns layer ``k`` of simultaneously-benchmarked pairs,
        which is how concurrent driving is modelled in SRB.
        """
        return tuple(el.gates for el in (*self.elements, self.inverse))

    def total_cnots(self) -> int:
        return sum(el.cnot_count for el in (*self.elements, self.inverse))

    def mapped_gates(self, qubits: Sequence[int]) -> GateList:
        """All gates with local indices replaced by device ``qubits``."""
        out = []
        for layer in self.layers():
            for name, locals_ in layer:
                out.append((name, tuple(qubits[q] for q in locals_)))
        return tuple(out)


def generate_rb_sequence(group: CliffordGroup, length: int,
                         rng: np.random.Generator) -> RBSequence:
    """Sample a length-``m`` sequence and close it with the exact inverse."""
    if length < 1:
        raise ValueError("RB length must be at least 1")
    indices = rng.integers(len(group), size=length)
    elements = tuple(group.elements[int(i)] for i in indices)
    product = elements[0].tableau
    for el in elements[1:]:
        product = product.compose(el.tableau)
    inverse = group.inverse_element(product)
    return RBSequence(elements, inverse)


#: Memoized shared sequences; bounded so pathological sweeps (many seed
#: classes in one process) cannot grow without limit.
_SHARED_SEQUENCES: Dict[Tuple, RBSequence] = {}
_SHARED_SEQUENCES_LIMIT = 8192


def shared_rb_sequence(num_qubits: int, length: int, seq_index: int,
                       slot: int, seed_class: Tuple) -> RBSequence:
    """A memoized random sequence keyed by experiment *shape*, not target.

    ``seq_index`` is the sequence's position within an experiment's
    ``num_sequences`` repeats, ``slot`` the target's position within the
    experiment (so the two halves of an SRB pair draw different
    sequences), and ``seed_class`` the sweep identity (device fingerprint,
    day, executor base seed).  Every experiment of a sweep that asks for
    the same key gets the *same* — stably generated — sequence, which is
    what lets a pair sweep over hundreds of edges amortize generation:
    the targets themselves are deliberately absent from the key.
    """
    key = (num_qubits, length, seq_index, slot, seed_class)
    seq = _SHARED_SEQUENCES.get(key)
    if seq is None:
        rng = stable_rng("rb.sequence", num_qubits, length, seq_index, slot,
                         list(seed_class))
        seq = generate_rb_sequence(clifford_group(num_qubits), length, rng)
        seq = RBSequence(seq.elements, seq.inverse, cache_token=key)
        if len(_SHARED_SEQUENCES) >= _SHARED_SEQUENCES_LIMIT:
            _SHARED_SEQUENCES.clear()
        _SHARED_SEQUENCES[key] = seq
    return seq
