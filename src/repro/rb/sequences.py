"""RB sequence construction.

An RB sequence of length ``m`` is ``m`` uniformly random Clifford elements
followed by the group inverse of their product, so an ideal execution is
the identity and the survival probability (returning to |0..0>) decays as
``A f**m + B`` under noise.  Sequences are built on local qubits 0..n-1 and
mapped onto device qubits when executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.rb.clifford import CliffordElement, CliffordGroup

GateList = Tuple[Tuple[str, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class RBSequence:
    """One random sequence: the sampled Cliffords plus the closing inverse."""

    elements: Tuple[CliffordElement, ...]
    inverse: CliffordElement

    @property
    def length(self) -> int:
        """RB length ``m`` (number of random Cliffords, inverse excluded)."""
        return len(self.elements)

    def layers(self) -> Tuple[GateList, ...]:
        """Per-Clifford gate layers (local qubit indices), inverse last.

        The executor aligns layer ``k`` of simultaneously-benchmarked pairs,
        which is how concurrent driving is modelled in SRB.
        """
        return tuple(el.gates for el in (*self.elements, self.inverse))

    def total_cnots(self) -> int:
        return sum(el.cnot_count for el in (*self.elements, self.inverse))

    def mapped_gates(self, qubits: Sequence[int]) -> GateList:
        """All gates with local indices replaced by device ``qubits``."""
        out = []
        for layer in self.layers():
            for name, locals_ in layer:
                out.append((name, tuple(qubits[q] for q in locals_)))
        return tuple(out)


def generate_rb_sequence(group: CliffordGroup, length: int,
                         rng: np.random.Generator) -> RBSequence:
    """Sample a length-``m`` sequence and close it with the exact inverse."""
    if length < 1:
        raise ValueError("RB length must be at least 1")
    indices = rng.integers(len(group), size=length)
    elements = tuple(group.elements[int(i)] for i in indices)
    product = elements[0].tableau
    for el in elements[1:]:
        product = product.compose(el.tableau)
    inverse = group.inverse_element(product)
    return RBSequence(elements, inverse)
