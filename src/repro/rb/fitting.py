"""Exponential-decay fitting for RB survival curves.

Survival data ``(m, p_m)`` is fit to the standard RB model
``p_m = A * f**m + B``; the error per Clifford is
``r = (1 - f) * (2**n - 1) / 2**n`` and the CNOT error rate follows by
dividing by the average CNOTs per Clifford (1.5 for the exact 2-qubit
group), exactly the procedure of Section 8.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize


@dataclass(frozen=True)
class RBFit:
    """Fitted RB decay parameters and derived error rates."""

    amplitude: float
    decay: float
    offset: float
    num_qubits: int

    @property
    def error_per_clifford(self) -> float:
        dim = 2 ** self.num_qubits
        return (1.0 - self.decay) * (dim - 1) / dim

    def error_per_cnot(self, cnots_per_clifford: float = 1.5) -> float:
        return error_per_clifford_to_cnot(self.error_per_clifford, cnots_per_clifford)

    def survival(self, length: float) -> float:
        return self.amplitude * self.decay ** length + self.offset


def fit_rb_decay(lengths: Sequence[int], survivals: Sequence[float],
                 num_qubits: int = 2) -> RBFit:
    """Least-squares fit of ``A * f**m + B`` with physical bounds.

    Falls back to a log-linear two-point estimate when the optimizer cannot
    improve on it (e.g. survival saturated at the floor).
    """
    lengths = np.asarray(lengths, dtype=float)
    survivals = np.asarray(survivals, dtype=float)
    if len(lengths) != len(survivals):
        raise ValueError("lengths and survivals must align")
    if len(lengths) < 3:
        raise ValueError("need at least three lengths for a stable fit")

    dim = 2 ** num_qubits
    floor = 1.0 / dim
    amp0 = 1.0 - floor
    f0 = _initial_decay(lengths, survivals, floor, amp0)

    def model(m, a, f, b):
        return a * np.power(f, m) + b

    try:
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", optimize.OptimizeWarning)
            popt, _ = optimize.curve_fit(
                model, lengths, survivals,
                p0=(amp0, f0, floor),
                bounds=((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)),
                maxfev=20_000,
            )
        amplitude, decay, offset = (float(v) for v in popt)
    except (RuntimeError, ValueError):
        amplitude, decay, offset = amp0, f0, floor
    return RBFit(amplitude, decay, offset, num_qubits)


def _initial_decay(lengths: np.ndarray, survivals: np.ndarray,
                   floor: float, amp: float) -> float:
    """Decay estimate from the first/last points, clipped to (0, 1)."""
    y0 = max(survivals[0] - floor, 1e-6) / amp
    y1 = max(survivals[-1] - floor, 1e-6) / amp
    span = max(lengths[-1] - lengths[0], 1.0)
    ratio = min(max(y1 / y0, 1e-9), 1.0 - 1e-9)
    return float(np.clip(ratio ** (1.0 / span), 1e-6, 1.0 - 1e-6))


def error_per_clifford_to_cnot(error_per_clifford: float,
                               cnots_per_clifford: float = 1.5) -> float:
    """Upper-bound CNOT error from Clifford error (Section 8.1)."""
    if cnots_per_clifford <= 0:
        raise ValueError("cnots_per_clifford must be positive")
    return error_per_clifford / cnots_per_clifford
