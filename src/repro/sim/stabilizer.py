"""CHP-style stabilizer simulator (Aaronson & Gottesman, 2004).

Randomized benchmarking circuits are Clifford-only, so the RB substrate
(:mod:`repro.rb`) simulates them on this tableau simulator instead of the
dense statevector engine.  The tableau tracks ``2n`` generators (``n``
destabilizers followed by ``n`` stabilizers) as x/z bit matrices plus a
phase column.

Supported operations: H, S, Sdg, X, Y, Z, CX, CZ, SWAP, projective Z
measurement, and exact outcome-probability queries (each measurement is
either deterministic or a fair coin for stabilizer states, so bitstring
probabilities are exactly ``2**-k``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np


class StabilizerSimulator:
    """Mutable stabilizer state of ``num_qubits`` qubits, initially |0...0>."""

    def __init__(self, num_qubits: int, rng: Optional[np.random.Generator] = None):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self._rng = rng if rng is not None else np.random.default_rng()
        n = num_qubits
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        # Destabilizers X_i, stabilizers Z_i.
        for i in range(n):
            self.x[i, i] = 1
            self.z[n + i, i] = 1

    def copy(self) -> "StabilizerSimulator":
        out = StabilizerSimulator.__new__(StabilizerSimulator)
        out.num_qubits = self.num_qubits
        out._rng = self._rng
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out

    # ------------------------------------------------------------------
    # Clifford gates
    # ------------------------------------------------------------------
    def h(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.x[:, a], self.z[:, a] = self.z[:, a].copy(), self.x[:, a].copy()

    def s(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.z[:, a] ^= self.x[:, a]

    def sdg(self, a: int) -> None:
        self.s(a)
        self.z_gate(a)

    def x_gate(self, a: int) -> None:
        self.r ^= self.z[:, a]

    def y_gate(self, a: int) -> None:
        self.r ^= self.x[:, a] ^ self.z[:, a]

    def z_gate(self, a: int) -> None:
        self.r ^= self.x[:, a]

    def cx(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("cx needs distinct qubits")
        self.r ^= self.x[:, a] & self.z[:, b] & (self.x[:, b] ^ self.z[:, a] ^ 1)
        self.x[:, b] ^= self.x[:, a]
        self.z[:, a] ^= self.z[:, b]

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        self.cx(a, b)
        self.cx(b, a)
        self.cx(a, b)

    def apply_gate(self, name: str, qubits: Sequence[int]) -> None:
        """Dispatch a named Clifford gate (subset of the IR gate set)."""
        table = {
            "id": lambda: None,
            "h": lambda: self.h(qubits[0]),
            "s": lambda: self.s(qubits[0]),
            "sdg": lambda: self.sdg(qubits[0]),
            "x": lambda: self.x_gate(qubits[0]),
            "y": lambda: self.y_gate(qubits[0]),
            "z": lambda: self.z_gate(qubits[0]),
            "cx": lambda: self.cx(qubits[0], qubits[1]),
            "cz": lambda: self.cz(qubits[0], qubits[1]),
            "swap": lambda: self.swap(qubits[0], qubits[1]),
        }
        try:
            table[name]()
        except KeyError:
            raise KeyError(f"gate {name!r} is not Clifford or not supported") from None

    def apply_pauli(self, label: str, qubits: Sequence[int]) -> None:
        """Apply a Pauli string, e.g. ``apply_pauli("XZ", (3, 5))``."""
        if len(label) != len(qubits):
            raise ValueError("label/qubit length mismatch")
        dispatch = {"I": lambda q: None, "X": self.x_gate, "Y": self.y_gate, "Z": self.z_gate}
        for ch, q in zip(label, qubits):
            dispatch[ch](q)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _g(self, x1: int, z1: int, x2: int, z2: int) -> int:
        """Exponent of i when multiplying Paulis (x1,z1)*(x2,z2); in {-1,0,1}."""
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:  # Y
            return z2 - x2
        if x1 == 1 and z1 == 0:  # X
            return z2 * (2 * x2 - 1)
        return x2 * (1 - 2 * z2)  # Z

    def _rowsum(self, h: int, i: int) -> None:
        """Row h := row h * row i, with correct phase (AG05 rowsum)."""
        phase = 2 * int(self.r[h]) + 2 * int(self.r[i])
        for j in range(self.num_qubits):
            phase += self._g(int(self.x[i, j]), int(self.z[i, j]),
                             int(self.x[h, j]), int(self.z[h, j]))
        self.r[h] = (phase % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def measure(self, a: int, forced_outcome: Optional[int] = None) -> int:
        """Projective Z measurement of qubit ``a`` with collapse.

        ``forced_outcome`` postselects a random measurement (used by the
        exact probability query); forcing a deterministic measurement to the
        wrong value raises.
        """
        n = self.num_qubits
        p = next((i for i in range(n, 2 * n) if self.x[i, a]), None)
        if p is not None:
            # Random outcome.
            if forced_outcome is None:
                outcome = int(self._rng.integers(2))
            else:
                outcome = forced_outcome
            for i in range(2 * n):
                if i != p and self.x[i, a]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, a] = 1
            self.r[p] = outcome
            return outcome
        # Deterministic outcome: accumulate into scratch row via rowsum.
        self.x = np.vstack([self.x, np.zeros((1, n), dtype=np.uint8)])
        self.z = np.vstack([self.z, np.zeros((1, n), dtype=np.uint8)])
        self.r = np.append(self.r, np.uint8(0))
        scratch = 2 * n
        for i in range(n):
            if self.x[i, a]:
                self._rowsum(scratch, i + n)
        outcome = int(self.r[scratch])
        self.x = self.x[:-1]
        self.z = self.z[:-1]
        self.r = self.r[:-1]
        if forced_outcome is not None and forced_outcome != outcome:
            raise ValueError("cannot force a deterministic measurement to the other value")
        return outcome

    def is_deterministic(self, a: int) -> bool:
        """True when measuring qubit ``a`` has a certain outcome."""
        n = self.num_qubits
        return not any(self.x[i, a] for i in range(n, 2 * n))

    def probability_of_outcome(self, bits: Dict[int, int]) -> float:
        """Exact probability of jointly observing ``bits`` = {qubit: 0/1}.

        Measures the requested qubits sequentially on a copy; every random
        step contributes a factor 1/2, a contradicted deterministic step
        makes the probability 0.
        """
        sim = self.copy()
        prob = 1.0
        for qubit in sorted(bits):
            target = bits[qubit]
            if sim.is_deterministic(qubit):
                if sim.measure(qubit) != target:
                    return 0.0
            else:
                prob *= 0.5
                sim.measure(qubit, forced_outcome=target)
        return prob

    def survival_probability(self) -> float:
        """Probability that measuring every qubit yields all zeros.

        This is the RB survival quantity: ideal sequences return to |0...0>.
        """
        return self.probability_of_outcome({q: 0 for q in range(self.num_qubits)})
