"""Quantum state simulation substrate.

This package replaces the role of real IBMQ hardware (and Qiskit Aer) in the
original paper's experiments:

* :mod:`repro.sim.unitaries` — matrices for every gate in the IR;
* :mod:`repro.sim.statevector` — a dense statevector engine with
  measurement and sampling;
* :mod:`repro.sim.channels` — noise channels (depolarizing, amplitude
  damping, dephasing, readout) in Kraus/trajectory form;
* :mod:`repro.sim.trajectory` — Monte-Carlo trajectory execution of a noisy
  instruction stream;
* :mod:`repro.sim.stabilizer` — a CHP-style stabilizer simulator used by the
  randomized-benchmarking substrate, where circuits are Clifford-only and
  20-qubit dense simulation would be wasteful.
"""

from repro.sim.unitaries import gate_unitary
from repro.sim.statevector import Statevector, simulate_statevector, ideal_distribution
from repro.sim.channels import (
    depolarizing_kraus,
    amplitude_damping_kraus,
    phase_damping_kraus,
    two_qubit_depolarizing_paulis,
    ReadoutModel,
)
from repro.sim.trajectory import (
    ENGINE_CODES,
    BatchedTrajectorySimulator,
    NoisyOp,
    TrajectorySimulator,
    trajectory_generators,
    trajectory_seed,
)
from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.density import DensityMatrix, exact_output_distribution

__all__ = [
    "gate_unitary",
    "Statevector",
    "simulate_statevector",
    "ideal_distribution",
    "depolarizing_kraus",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "two_qubit_depolarizing_paulis",
    "ReadoutModel",
    "BatchedTrajectorySimulator",
    "ENGINE_CODES",
    "NoisyOp",
    "TrajectorySimulator",
    "trajectory_generators",
    "trajectory_seed",
    "StabilizerSimulator",
    "DensityMatrix",
    "exact_output_distribution",
]
