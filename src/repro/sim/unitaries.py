"""Unitary matrices for the IR gate set.

Conventions: qubit 0 is the least-significant bit of the computational basis
index (little-endian, matching Qiskit).  For two-qubit gates the first qubit
in ``Instruction.qubits`` is the control of ``cx``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

_SQ2 = 1.0 / math.sqrt(2.0)

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
TDG = T.conj().T
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
SXDG = SX.conj().T

#: The single-qubit Pauli basis, indexed I, X, Y, Z.
PAULIS_1Q = (I2, X, Y, Z)


def rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def u2(phi: float, lam: float) -> np.ndarray:
    return u3(math.pi / 2, phi, lam)


def u1(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


# Two-qubit matrices in little-endian convention for qubit order (q0, q1):
# basis index b = b1*2 + b0 where b0 is the state of the *first* listed qubit.
# CX below is control = first listed qubit, target = second.
CX = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
    ],
    dtype=complex,
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

_FIXED = {
    "id": I2,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
    "sxdg": SXDG,
    "cx": CX,
    "cz": CZ,
    "swap": SWAP,
}

_PARAMETRIC = {
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "u1": u1,
    "u2": u2,
    "u3": u3,
}


def gate_unitary(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix for a gate name and parameter tuple.

    Raises:
        KeyError: for directives or unknown gates (barriers and measurements
            have no unitary).
    """
    if name in _FIXED:
        return _FIXED[name]
    if name in _PARAMETRIC:
        return _PARAMETRIC[name](*params)
    raise KeyError(f"gate {name!r} has no unitary")


@lru_cache(maxsize=None)
def pauli_matrix(label: str) -> np.ndarray:
    """Tensor product of single-qubit Paulis, e.g. ``"XZ"``.

    ``label[k]`` acts on qubit ``k`` (little-endian: the kron order is
    reversed so that index 0 is the least significant qubit).
    """
    lookup = {"I": I2, "X": X, "Y": Y, "Z": Z}
    mat = np.array([[1.0 + 0j]])
    for ch in label:
        mat = np.kron(lookup[ch], mat)
    return mat


def two_qubit_pauli_labels(include_identity: bool = False) -> Tuple[str, ...]:
    """The 15 (or 16) two-qubit Pauli labels used by depolarizing sampling."""
    labels = []
    for a in "IXYZ":
        for b in "IXYZ":
            if not include_identity and a == "I" and b == "I":
                continue
            labels.append(a + b)
    return tuple(labels)
