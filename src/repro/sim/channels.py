"""Noise channels in Kraus and trajectory form.

These model the three physical error processes the paper's evaluation rests
on:

* **gate error** — a depolarizing channel whose probability is the CNOT's
  (independent or crosstalk-conditional) error rate;
* **decoherence** — amplitude damping (T1 relaxation) and pure dephasing
  (T2) applied for the time a qubit sits idle or under a gate;
* **readout error** — a classical per-qubit confusion matrix.

Trajectory (Monte-Carlo wavefunction) sampling helpers are provided for each
channel so the statevector engine never needs density matrices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.unitaries import pauli_matrix, two_qubit_pauli_labels


# ----------------------------------------------------------------------
# Kraus representations (used in tests to verify channel algebra)
# ----------------------------------------------------------------------
def depolarizing_kraus(p: float, num_qubits: int = 1) -> List[np.ndarray]:
    """Kraus operators of the ``num_qubits``-qubit depolarizing channel.

    With probability ``p`` the state is replaced by a uniformly random
    non-identity Pauli applied to it (the "error occurred" convention used
    for gate error rates, matching randomized benchmarking's depolarizing
    parameter up to the standard d^2/(d^2-1) factor).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability {p} outside [0, 1]")
    dim_sq = 4 ** num_qubits
    labels = _pauli_labels(num_qubits)
    ops = [math.sqrt(1.0 - p) * pauli_matrix("I" * num_qubits)]
    for label in labels:
        ops.append(math.sqrt(p / (dim_sq - 1)) * pauli_matrix(label))
    return ops


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Kraus operators of single-qubit amplitude damping (T1 decay)."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma {gamma} outside [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> List[np.ndarray]:
    """Kraus operators of single-qubit phase damping (pure dephasing)."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lambda {lam} outside [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def _pauli_labels(num_qubits: int) -> Tuple[str, ...]:
    if num_qubits == 1:
        return ("X", "Y", "Z")
    if num_qubits == 2:
        return two_qubit_pauli_labels()
    raise ValueError("depolarizing beyond 2 qubits not needed")


def two_qubit_depolarizing_paulis() -> Tuple[str, ...]:
    """The 15 non-identity two-qubit Pauli labels sampled on a CNOT error."""
    return two_qubit_pauli_labels()


# ----------------------------------------------------------------------
# decoherence parameters
# ----------------------------------------------------------------------
def decay_probabilities(duration: float, t1: float, t2: float) -> Tuple[float, float]:
    """Convert an idle duration and (T1, T2) into trajectory probabilities.

    Returns ``(gamma, p_z)`` where ``gamma`` is the amplitude-damping
    probability ``1 - exp(-t/T1)`` and ``p_z`` is the probability of a Z
    (phase-flip) error reproducing the pure-dephasing part of T2.

    The pure dephasing rate is ``1/T_phi = 1/T2 - 1/(2*T1)`` (T2 <= 2*T1 in
    any physical device); a phase-damping parameter ``lam = 1 - exp(-t/T_phi)``
    is equivalent to a Z error with probability ``(1 - sqrt(1-lam)) / 2``.
    """
    if duration < 0:
        raise ValueError("negative duration")
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    gamma = 1.0 - math.exp(-duration / t1)
    dephasing_rate = 1.0 / t2 - 1.0 / (2.0 * t1)
    if dephasing_rate <= 0.0:
        # T2 at (or numerically above) the 2*T1 limit: no pure dephasing.
        p_z = 0.0
    else:
        lam = 1.0 - math.exp(-duration * dephasing_rate)
        p_z = (1.0 - math.sqrt(1.0 - lam)) / 2.0
    return gamma, p_z


# ----------------------------------------------------------------------
# readout error
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReadoutModel:
    """Classical readout confusion model.

    ``p1_given_0[q]`` is the probability of reading 1 when qubit ``q`` is in
    state 0; ``p0_given_1[q]`` the probability of reading 0 given state 1.
    The paper quotes an average single-qubit readout error of 4.8%.
    """

    p1_given_0: Tuple[float, ...]
    p0_given_1: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.p1_given_0) != len(self.p0_given_1):
            raise ValueError("readout vectors must have equal length")
        for p in (*self.p1_given_0, *self.p0_given_1):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"readout probability {p} outside [0, 1]")

    @property
    def num_qubits(self) -> int:
        return len(self.p1_given_0)

    @classmethod
    def uniform(cls, num_qubits: int, error: float) -> "ReadoutModel":
        return cls((error,) * num_qubits, (error,) * num_qubits)

    @classmethod
    def ideal(cls, num_qubits: int) -> "ReadoutModel":
        return cls.uniform(num_qubits, 0.0)

    def confusion_matrix_1q(self, qubit: int) -> np.ndarray:
        """Column-stochastic 2x2 matrix M[measured, true]."""
        e0, e1 = self.p1_given_0[qubit], self.p0_given_1[qubit]
        return np.array([[1.0 - e0, e1], [e0, 1.0 - e1]])

    def confusion_matrix(self, qubits: Sequence[int]) -> np.ndarray:
        """Joint confusion matrix over ``qubits`` (little-endian kron).

        ``M[measured, true]`` over bitstring indices where bit ``k`` of an
        index is the outcome of ``qubits[k]``.
        """
        mat = np.array([[1.0]])
        for q in qubits:
            mat = np.kron(self.confusion_matrix_1q(q), mat)
        return mat

    def apply_to_distribution(self, probs: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Push a true-outcome distribution through the confusion matrix."""
        if len(probs) != 2 ** len(qubits):
            raise ValueError("distribution length does not match qubit count")
        return self.confusion_matrix(qubits) @ np.asarray(probs, dtype=float)

    def restrict(self, qubits: Sequence[int]) -> "ReadoutModel":
        """A readout model over only ``qubits`` (renumbered 0..k-1)."""
        return ReadoutModel(
            tuple(self.p1_given_0[q] for q in qubits),
            tuple(self.p0_given_1[q] for q in qubits),
        )


def counts_to_distribution(counts: Dict[str, int], num_bits: int) -> np.ndarray:
    """Normalize a counts dict (bitstring -> count) into a probability array."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("empty counts")
    probs = np.zeros(2 ** num_bits)
    for bits, c in counts.items():
        if len(bits) != num_bits:
            raise ValueError(f"bitstring {bits!r} does not have {num_bits} bits")
        probs[int(bits, 2)] = c / total
    return probs


def distribution_to_counts(probs: np.ndarray, shots: int,
                           rng: np.random.Generator) -> Dict[str, int]:
    """Multinomially sample a counts dict from a probability array."""
    probs = np.clip(np.asarray(probs, dtype=float), 0.0, None)
    probs = probs / probs.sum()
    n = int(round(math.log2(len(probs))))
    draws = rng.multinomial(shots, probs)
    return {format(i, f"0{n}b"): int(c) for i, c in enumerate(draws) if c > 0}
