"""Dense statevector simulation engine.

The engine stores the amplitudes of ``n`` qubits as a complex array of shape
``(2,) * n`` (axis ``k`` = qubit ``k``), which makes applying a gate to an
arbitrary qubit subset a tensordot + transpose.  This is fast enough for the
paper's workloads: the application circuits touch at most ~8 qubits, and the
supremacy circuits are only ever *compiled*, not simulated.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.sim.unitaries import gate_unitary


class Statevector:
    """Mutable statevector over ``num_qubits`` qubits (little-endian)."""

    def __init__(self, num_qubits: int, rng: Optional[np.random.Generator] = None):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        if num_qubits > 24:
            raise ValueError("dense simulation beyond 24 qubits is not supported")
        self.num_qubits = num_qubits
        self._rng = rng if rng is not None else np.random.default_rng()
        self._tensor = np.zeros((2,) * num_qubits, dtype=complex)
        self._tensor[(0,) * num_qubits] = 1.0

    # ------------------------------------------------------------------
    @property
    def vector(self) -> np.ndarray:
        """Flat amplitude vector of length ``2**num_qubits``.

        The flat index interprets qubit 0 as the least-significant bit, so
        the tensor (whose axis 0 is qubit 0) is transposed before reshaping.
        """
        return self._tensor.transpose(tuple(reversed(range(self.num_qubits)))).reshape(-1)

    @classmethod
    def from_vector(cls, vec: np.ndarray, rng: Optional[np.random.Generator] = None) -> "Statevector":
        n = int(round(math.log2(len(vec))))
        if 2 ** n != len(vec):
            raise ValueError("vector length must be a power of two")
        state = cls(n, rng)
        tensor = np.asarray(vec, dtype=complex).reshape((2,) * n)
        state._tensor = tensor.transpose(tuple(reversed(range(n))))
        return state

    def norm(self) -> float:
        return float(np.sqrt(np.sum(np.abs(self._tensor) ** 2)))

    def renormalize(self) -> None:
        n = self.norm()
        if n < 1e-12:
            raise ValueError("statevector collapsed to zero norm")
        self._tensor /= n

    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2^k x 2^k`` unitary (little-endian over ``qubits``)."""
        k = len(qubits)
        if matrix.shape != (2 ** k, 2 ** k):
            raise ValueError(f"matrix shape {matrix.shape} does not act on {k} qubits")
        if len(set(qubits)) != k:
            raise ValueError("duplicate qubits")
        # Reshape the matrix into a rank-2k tensor.  Little-endian means the
        # *first* listed qubit is the fastest-varying index of the matrix, so
        # reshaping yields axes (out_{k-1}..out_0, in_{k-1}..in_0).
        op = matrix.reshape((2,) * (2 * k))
        in_axes = tuple(range(2 * k - 1, k - 1, -1))  # in_0, in_1, ..., in_{k-1}
        self._tensor = np.tensordot(op, self._tensor, axes=(in_axes, tuple(qubits)))
        # tensordot leaves axes (out_{k-1}..out_0, untouched qubits ascending);
        # move every axis back so that axis q is qubit q again.
        rest = [ax for ax in range(self.num_qubits) if ax not in qubits]
        destination = list(reversed(qubits)) + rest
        self._tensor = np.moveaxis(
            self._tensor, list(range(self.num_qubits)), destination
        )

    def apply_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> None:
        self.apply_matrix(gate_unitary(name, params), qubits)

    # ------------------------------------------------------------------
    def probability_of_one(self, qubit: int) -> float:
        """Probability that measuring ``qubit`` yields 1."""
        marginal = np.sum(np.abs(self._tensor) ** 2, axis=tuple(
            ax for ax in range(self.num_qubits) if ax != qubit
        ))
        return float(marginal[1])

    def measure(self, qubit: int) -> int:
        """Projective Z measurement with state collapse."""
        p1 = self.probability_of_one(qubit)
        outcome = 1 if self._rng.random() < p1 else 0
        self.project(qubit, outcome)
        return outcome

    def project(self, qubit: int, outcome: int) -> None:
        """Project ``qubit`` onto ``outcome`` and renormalize."""
        index = [slice(None)] * self.num_qubits
        index[qubit] = 1 - outcome
        self._tensor[tuple(index)] = 0.0
        self.renormalize()

    def probabilities(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Joint outcome probabilities for ``qubits`` (default: all).

        Entry ``i`` of the result is the probability of the bitstring whose
        bit ``k`` (value ``(i >> k) & 1``) is the outcome of ``qubits[k]``.
        """
        probs = np.abs(self._tensor) ** 2
        if qubits is None:
            qubits = tuple(range(self.num_qubits))
        drop = tuple(ax for ax in range(self.num_qubits) if ax not in qubits)
        marginal = probs.sum(axis=drop) if drop else probs
        # marginal axes are the kept qubits in increasing order; reorder to
        # the requested order, then flatten little-endian.
        kept = [ax for ax in range(self.num_qubits) if ax in qubits]
        order = [kept.index(q) for q in qubits]
        marginal = marginal.transpose(order)
        return marginal.transpose(tuple(reversed(range(len(qubits))))).reshape(-1)

    def sample_counts(self, shots: int, qubits: Optional[Sequence[int]] = None) -> Dict[str, int]:
        """Sample measurement counts without collapsing the state.

        Keys are bitstrings with qubit 0 (of the requested list) rightmost,
        matching the usual quantum-computing convention.
        """
        probs = self.probabilities(qubits)
        n = int(round(math.log2(len(probs))))
        draws = self._rng.multinomial(shots, probs / probs.sum())
        return {
            format(i, f"0{n}b"): int(c) for i, c in enumerate(draws) if c > 0
        }

    def density_matrix(self) -> np.ndarray:
        vec = self.vector
        return np.outer(vec, vec.conj())

    def fidelity(self, other: "Statevector") -> float:
        return float(abs(np.vdot(self.vector, other.vector)) ** 2)


def simulate_statevector(circuit: QuantumCircuit,
                         rng: Optional[np.random.Generator] = None) -> Statevector:
    """Noiselessly simulate a circuit, ignoring barriers and measurements."""
    state = Statevector(circuit.num_qubits, rng)
    for instr in circuit:
        if instr.is_directive or instr.is_measure:
            continue
        state.apply_gate(instr.name, instr.qubits, instr.params)
    return state


def ideal_distribution(circuit: QuantumCircuit,
                       qubits: Optional[Sequence[int]] = None) -> Dict[str, float]:
    """Noise-free output distribution over the measured qubits.

    When ``qubits`` is omitted, the measured qubits are taken from the
    circuit's measure instructions in clbit order (or all qubits if the
    circuit has no measurements).
    """
    if qubits is None:
        measured = sorted(
            ((instr.clbit, instr.qubits[0]) for instr in circuit if instr.is_measure),
        )
        qubits = [q for _, q in measured] or list(range(circuit.num_qubits))
    state = simulate_statevector(circuit)
    probs = state.probabilities(qubits)
    n = len(qubits)
    return {format(i, f"0{n}b"): float(p) for i, p in enumerate(probs) if p > 1e-12}
