"""Monte-Carlo trajectory execution of a noisy, timed instruction stream.

The device backend (:mod:`repro.device.backend`) lowers a scheduled circuit
into a flat, time-ordered list of :class:`NoisyOp` events:

* ``gate`` events carry the unitary to apply plus a depolarizing
  probability (the gate's independent or crosstalk-conditional error rate);
* ``decay`` events carry amplitude-damping / phase-flip probabilities for a
  stretch of idle (or in-gate) time on one qubit.

Two simulators share the event language:

* :class:`TrajectorySimulator` — the historical engine: one shared RNG
  stream, one sequential statevector evolution per trajectory.
* :class:`BatchedTrajectorySimulator` — the vectorized engine: a stacked
  ``(B, 2, ..., 2)`` amplitude array evolves all ``B`` trajectories of a
  batch per NumPy call, with stochastic branching decided by per-trajectory
  Bernoulli draws.  Every trajectory owns an RNG stream derived from its
  *global index*, so the accumulated distribution is bitwise identical for
  every batch size (and therefore every chunking / worker count), and the
  ``engine="scalar"`` reference path reproduces the same physics one
  statevector at a time for 1e-12 parity tests.

Both average the exact output distribution of many stochastic trajectories,
then sample shot counts — which converges much faster than per-shot
simulation for the shot budgets the paper uses (1024+).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.registry import get_registry
from repro.sim.channels import (
    ReadoutModel,
    distribution_to_counts,
    two_qubit_depolarizing_paulis,
)
from repro.sim.statevector import Statevector
from repro.sim.unitaries import gate_unitary, pauli_matrix

_PAULI_1Q = ("X", "Y", "Z")
_PAULI_2Q = two_qubit_depolarizing_paulis()

#: ``sim.engine`` gauge coding (registered in docs/observability.md).
ENGINE_CODES = {"scalar": 0, "batched": 1}


@dataclass(frozen=True)
class NoisyOp:
    """One event in the lowered noisy instruction stream.

    ``kind`` is ``"gate"`` or ``"decay"``.  For gates, ``error_prob`` is the
    depolarizing probability applied after the unitary.  For decay events,
    ``gamma`` is the amplitude-damping probability and ``p_z`` the phase-flip
    probability, both acting on ``qubits[0]``.
    """

    kind: str
    qubits: Tuple[int, ...]
    name: str = ""
    params: Tuple[float, ...] = ()
    error_prob: float = 0.0
    gamma: float = 0.0
    p_z: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("gate", "decay"):
            raise ValueError(f"unknown NoisyOp kind {self.kind!r}")
        if self.kind == "decay" and len(self.qubits) != 1:
            raise ValueError("decay events act on exactly one qubit")
        for p in (self.error_prob, self.gamma, self.p_z):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability {p} outside [0, 1]")

    @classmethod
    def gate(cls, name: str, qubits: Sequence[int], params: Sequence[float] = (),
             error_prob: float = 0.0) -> "NoisyOp":
        return cls("gate", tuple(qubits), name=name, params=tuple(params),
                   error_prob=error_prob)

    @classmethod
    def decay(cls, qubit: int, gamma: float, p_z: float) -> "NoisyOp":
        return cls("decay", (qubit,), gamma=gamma, p_z=p_z)


class TrajectorySimulator:
    """Runs :class:`NoisyOp` streams via Monte-Carlo wavefunction sampling."""

    def __init__(self, num_qubits: int, seed=None):
        # ``seed`` is anything ``np.random.default_rng`` accepts — an int,
        # a ``SeedSequence`` (how the backend seeds per-chunk simulators),
        # or ``None`` for OS entropy.
        self.num_qubits = num_qubits
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _run_single_trajectory(self, ops: Sequence[NoisyOp]) -> Statevector:
        return _evolve_single(self.num_qubits, ops, self._rng)

    def _apply_decay(self, state: Statevector, op: NoisyOp) -> None:
        _apply_decay_single(state, op, self._rng)

    # ------------------------------------------------------------------
    def accumulate(self, ops: Sequence[NoisyOp],
                   measured_qubits: Sequence[int],
                   trajectories: int) -> np.ndarray:
        """Unnormalized sum of ``trajectories`` output distributions.

        The building block for parallel trajectory execution: the backend
        splits the trajectory budget into fixed-size chunks, runs each
        chunk on its own independently seeded simulator, and sums the
        partial accumulators in chunk order — so the merged distribution is
        bitwise identical for every worker count.
        """
        if trajectories <= 0:
            raise ValueError("need at least one trajectory")
        total = np.zeros(2 ** len(measured_qubits))
        for _ in range(trajectories):
            state = self._run_single_trajectory(ops)
            total += state.probabilities(measured_qubits)
        return total

    def output_distribution(self, ops: Sequence[NoisyOp],
                            measured_qubits: Sequence[int],
                            trajectories: int = 64,
                            readout: Optional[ReadoutModel] = None) -> np.ndarray:
        """Average output distribution over ``trajectories`` random runs.

        The result indexes bitstrings little-endian over ``measured_qubits``
        (bit ``k`` of the index = outcome of ``measured_qubits[k]``).
        """
        probs = self.accumulate(ops, measured_qubits, trajectories) / trajectories
        if readout is not None:
            probs = readout.restrict(measured_qubits).apply_to_distribution(
                probs, range(len(measured_qubits))
            )
        return probs

    def run(self, ops: Sequence[NoisyOp], measured_qubits: Sequence[int],
            shots: int = 1024, trajectories: int = 64,
            readout: Optional[ReadoutModel] = None) -> Dict[str, int]:
        """Sample ``shots`` measurement outcomes (bitstring keys, qubit 0 of
        ``measured_qubits`` rightmost)."""
        probs = self.output_distribution(ops, measured_qubits, trajectories, readout)
        return distribution_to_counts(probs, shots, self._rng)


# ----------------------------------------------------------------------
# shared single-trajectory physics (legacy engine + scalar parity path)
# ----------------------------------------------------------------------
def _evolve_single(num_qubits: int, ops: Sequence[NoisyOp],
                   rng: np.random.Generator) -> Statevector:
    """Evolve one trajectory of ``ops`` drawing every branch from ``rng``."""
    state = Statevector(num_qubits, rng)
    for op in ops:
        if op.kind == "gate":
            state.apply_matrix(gate_unitary(op.name, op.params), op.qubits)
            if op.error_prob > 0.0 and rng.random() < op.error_prob:
                labels = _PAULI_2Q if len(op.qubits) == 2 else _PAULI_1Q
                label = labels[rng.integers(len(labels))]
                state.apply_matrix(pauli_matrix(label), op.qubits)
        else:
            _apply_decay_single(state, op, rng)
    return state


def _apply_decay_single(state: Statevector, op: NoisyOp,
                        rng: np.random.Generator) -> None:
    """One amplitude-damping / dephasing event on a single statevector."""
    qubit = op.qubits[0]
    if op.gamma > 0.0:
        # Amplitude damping via proper trajectory branching: the jump
        # branch |1> -> |0> fires with probability gamma * P(|1>).
        p1 = state.probability_of_one(qubit)
        p_jump = op.gamma * p1
        if rng.random() < p_jump:
            # K1 = sqrt(gamma) |0><1| : project onto |1> then flip to |0>.
            state.project(qubit, 1)
            state.apply_matrix(pauli_matrix("X"), (qubit,))
        else:
            # K0 = diag(1, sqrt(1-gamma)), renormalized.
            k0 = np.array(
                [[1.0, 0.0], [0.0, math.sqrt(1.0 - op.gamma)]], dtype=complex
            )
            state.apply_matrix(k0, (qubit,))
            state.renormalize()
    if op.p_z > 0.0 and rng.random() < op.p_z:
        state.apply_matrix(pauli_matrix("Z"), (qubit,))


# ----------------------------------------------------------------------
# per-trajectory RNG streams
# ----------------------------------------------------------------------
def trajectory_seed(root: np.random.SeedSequence,
                    index: int) -> np.random.SeedSequence:
    """The RNG stream of the trajectory with *global* index ``index``.

    Equivalent to ``root.spawn(index + 1)[index]`` but stateless: the
    stream depends only on the root entropy and the index, never on how
    many children were spawned before — so any chunking of a trajectory
    budget reproduces the same per-trajectory streams.
    """
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=(*root.spawn_key, int(index))
    )


def trajectory_generators(root: np.random.SeedSequence, start: int,
                          count: int) -> List[np.random.Generator]:
    """Generators for the ``count`` trajectories starting at ``start``."""
    return [np.random.default_rng(trajectory_seed(root, start + i))
            for i in range(count)]


def _as_seed_sequence(seed) -> np.random.SeedSequence:
    """Coerce an int / ``SeedSequence`` / ``None`` seed into a root."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


# ----------------------------------------------------------------------
# batched engine
# ----------------------------------------------------------------------
def _batched_index(psi: np.ndarray, qubit: int, value: int) -> Tuple:
    """Index tuple selecting one computational component of one qubit
    across the whole batch (batch axis 0, qubit ``q`` on axis ``q + 1``)."""
    return (slice(None),) * (qubit + 1) + (value,)


def _apply_matrix_batched(psi: np.ndarray, matrix: np.ndarray,
                          qubits: Sequence[int]) -> np.ndarray:
    """Apply a little-endian ``2^k x 2^k`` unitary to every trajectory.

    The one- and two-qubit paths are pure elementwise multiply-adds over
    component views, which NumPy evaluates per element — so each
    trajectory's amplitudes come out bitwise identical no matter how many
    other trajectories share the batch.  (A BLAS matmul would not make
    that guarantee: tail-block kernels may round differently than full
    SIMD blocks.)
    """
    k = len(qubits)
    if k == 1:
        q = qubits[0]
        a0 = psi[_batched_index(psi, q, 0)]
        a1 = psi[_batched_index(psi, q, 1)]
        b0 = matrix[0, 0] * a0 + matrix[0, 1] * a1
        b1 = matrix[1, 0] * a0 + matrix[1, 1] * a1
        psi[_batched_index(psi, q, 0)] = b0
        psi[_batched_index(psi, q, 1)] = b1
        return psi
    if k == 2:
        qa, qb = qubits
        views = {}
        for a in (0, 1):
            for b in (0, 1):
                idx = [slice(None)] * psi.ndim
                idx[qa + 1] = a
                idx[qb + 1] = b
                views[a, b] = tuple(idx)
        olds = {key: psi[idx] for key, idx in views.items()}
        news = {}
        # Little-endian over ``qubits``: the first listed qubit is the
        # fastest-varying matrix index.
        for a in (0, 1):
            for b in (0, 1):
                row = a + 2 * b
                news[a, b] = (
                    matrix[row, 0] * olds[0, 0]
                    + matrix[row, 1] * olds[1, 0]
                    + matrix[row, 2] * olds[0, 1]
                    + matrix[row, 3] * olds[1, 1]
                )
        for key, idx in views.items():
            psi[idx] = news[key]
        return psi
    # Generic fallback (no 3+-qubit gates exist in the IR today): the same
    # tensordot dance as Statevector.apply_matrix with a leading batch axis.
    op = matrix.reshape((2,) * (2 * k))
    in_axes = tuple(range(2 * k - 1, k - 1, -1))
    out = np.tensordot(op, psi, axes=(in_axes, tuple(q + 1 for q in qubits)))
    # out axes: (out_{k-1}..out_0, batch, untouched qubit axes ascending)
    sources = list(range(k + 1))
    destinations = [q + 1 for q in reversed(qubits)] + [0]
    return np.moveaxis(out, sources, destinations)


def _row_norms(psi: np.ndarray) -> np.ndarray:
    """Per-trajectory state norms, shape ``(B,)``."""
    axes = tuple(range(1, psi.ndim))
    return np.sqrt(np.sum(np.abs(psi) ** 2, axis=axes))


def _uniform_draws(generators: Sequence[np.random.Generator]) -> np.ndarray:
    """One uniform draw per trajectory, in trajectory order."""
    return np.fromiter((g.random() for g in generators), dtype=float,
                       count=len(generators))


class BatchedTrajectorySimulator:
    """Vectorized Monte-Carlo trajectory engine (see module docstring).

    ``seed`` is an int, a :class:`~numpy.random.SeedSequence` (how the
    backend ships its per-run root), or ``None``; it roots the
    *per-trajectory* streams — trajectory ``i`` always draws from
    :func:`trajectory_seed` ``(root, i)``, whatever the batch layout.

    ``engine`` picks the evolution strategy:

    * ``"batched"`` (default) — all trajectories of a batch evolve in one
      stacked ``(B, 2, ..., 2)`` array per event;
    * ``"scalar"`` — the reference path: one statevector at a time, same
      per-trajectory streams, same physics.  Distributions agree with the
      batched path to ~1e-15 (parity-tested at 1e-12); they are *not*
      bitwise identical because the batched path uses elementwise
      multiply-adds where the scalar path uses ``tensordot``.
    """

    def __init__(self, num_qubits: int, seed=None, engine: str = "batched"):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        if engine not in ENGINE_CODES:
            raise ValueError(
                f"unknown engine {engine!r}; pick from {sorted(ENGINE_CODES)}"
            )
        self.num_qubits = num_qubits
        self.engine = engine
        self._root = _as_seed_sequence(seed)

    # ------------------------------------------------------------------
    def _evolve_batch(self, ops: Sequence[NoisyOp],
                      generators: Sequence[np.random.Generator]) -> np.ndarray:
        """Evolve one batch; returns amplitudes ``(B, 2, ..., 2)``."""
        n = self.num_qubits
        batch = len(generators)
        psi = np.zeros((batch,) + (2,) * n, dtype=complex)
        psi[(slice(None),) + (0,) * n] = 1.0
        for op in ops:
            if op.kind == "gate":
                psi = _apply_matrix_batched(
                    psi, gate_unitary(op.name, op.params), op.qubits
                )
                if op.error_prob > 0.0:
                    draws = _uniform_draws(generators)
                    firing = np.flatnonzero(draws < op.error_prob)
                    if firing.size:
                        labels = (_PAULI_2Q if len(op.qubits) == 2
                                  else _PAULI_1Q)
                        picks = [int(generators[b].integers(len(labels)))
                                 for b in firing]
                        for label_index in set(picks):
                            rows = firing[[i for i, p in enumerate(picks)
                                           if p == label_index]]
                            sub = psi[rows]
                            sub = _apply_matrix_batched(
                                sub, pauli_matrix(labels[label_index]),
                                op.qubits,
                            )
                            psi[rows] = sub
            else:
                psi = self._apply_decay_batched(psi, op, generators)
        return psi

    def _apply_decay_batched(self, psi: np.ndarray, op: NoisyOp,
                             generators: Sequence[np.random.Generator]
                             ) -> np.ndarray:
        """Batched amplitude damping + dephasing, one Bernoulli draw per
        trajectory per channel (matching the scalar draw pattern)."""
        qubit = op.qubits[0]
        if op.gamma > 0.0:
            # P(|1>) per trajectory from the (normalized) amplitudes.
            drop = tuple(ax for ax in range(1, psi.ndim) if ax != qubit + 1)
            marginal = np.sum(np.abs(psi) ** 2, axis=drop)  # (B, 2)
            p_jump = op.gamma * marginal[:, 1]
            draws = _uniform_draws(generators)
            jump = draws < p_jump
            jump_rows = np.flatnonzero(jump)
            if jump_rows.size:
                sub = psi[jump_rows]
                one = sub[_batched_index(sub, qubit, 1)].copy()
                sub[_batched_index(sub, qubit, 0)] = one
                sub[_batched_index(sub, qubit, 1)] = 0.0
                norms = _row_norms(sub)
                if np.any(norms < 1e-12):
                    raise ValueError("statevector collapsed to zero norm")
                sub /= norms.reshape((-1,) + (1,) * (psi.ndim - 1))
                psi[jump_rows] = sub
            keep_rows = np.flatnonzero(~jump)
            if keep_rows.size:
                sub = psi[keep_rows]
                scale = math.sqrt(1.0 - op.gamma)
                sub[_batched_index(sub, qubit, 1)] *= scale
                norms = _row_norms(sub)
                if np.any(norms < 1e-12):
                    raise ValueError("statevector collapsed to zero norm")
                sub /= norms.reshape((-1,) + (1,) * (psi.ndim - 1))
                psi[keep_rows] = sub
        if op.p_z > 0.0:
            draws = _uniform_draws(generators)
            flip_rows = np.flatnonzero(draws < op.p_z)
            if flip_rows.size:
                sub = psi[flip_rows]
                sub[_batched_index(sub, qubit, 1)] *= -1.0
                psi[flip_rows] = sub
        return psi

    def _batch_probabilities(self, psi: np.ndarray,
                             measured_qubits: Sequence[int]) -> np.ndarray:
        """Per-trajectory outcome distributions, shape ``(B, 2**m)``.

        Mirrors :meth:`Statevector.probabilities` with a leading batch
        axis: marginalize the dropped qubits, reorder to the requested
        qubit order, flatten little-endian.
        """
        n = self.num_qubits
        probs = np.abs(psi) ** 2
        drop = tuple(ax + 1 for ax in range(n) if ax not in measured_qubits)
        marginal = probs.sum(axis=drop) if drop else probs
        kept = [ax for ax in range(n) if ax in measured_qubits]
        order = [kept.index(q) for q in measured_qubits]
        marginal = marginal.transpose([0] + [1 + o for o in order])
        m = len(measured_qubits)
        marginal = marginal.transpose(
            [0] + [m - i for i in range(m)]
        )
        return marginal.reshape(len(psi), -1)

    # ------------------------------------------------------------------
    def accumulate(self, ops: Sequence[NoisyOp],
                   measured_qubits: Sequence[int], trajectories: int, *,
                   first_trajectory: int = 0,
                   batch_size: Optional[int] = None) -> np.ndarray:
        """Unnormalized sum of ``trajectories`` output distributions.

        Trajectory ``i`` of this call is *global* trajectory
        ``first_trajectory + i``: its RNG stream — and therefore its
        contribution — depends only on that index and the root seed.
        Partial sums accumulate in trajectory order with one scalar add
        per trajectory, so the result is bitwise identical for every
        ``batch_size`` (``None`` = the whole budget in one batch).  A
        budget split into ``first_trajectory`` windows and merged in
        window order is likewise bitwise reproducible for a *fixed*
        window plan — which is why the backend's chunk planner keys only
        on (trajectories, num_qubits), never on worker count.
        """
        if trajectories <= 0:
            raise ValueError("need at least one trajectory")
        measured = list(measured_qubits)
        total = np.zeros(2 ** len(measured))
        step = trajectories if batch_size is None else max(1, int(batch_size))
        registry = get_registry()
        done = 0
        while done < trajectories:
            count = min(step, trajectories - done)
            generators = trajectory_generators(
                self._root, first_trajectory + done, count
            )
            if self.engine == "batched":
                psi = self._evolve_batch(ops, generators)
                rows = self._batch_probabilities(psi, measured)
                registry.inc("sim.batch.batches")
                registry.inc("sim.batch.trajectories", count)
                registry.observe("sim.batch.size", float(count))
            else:
                rows = [
                    _evolve_single(self.num_qubits, ops, g).probabilities(
                        measured
                    )
                    for g in generators
                ]
            for row in rows:
                total += row
            done += count
        return total

    def output_distribution(self, ops: Sequence[NoisyOp],
                            measured_qubits: Sequence[int],
                            trajectories: int = 64,
                            readout: Optional[ReadoutModel] = None, *,
                            first_trajectory: int = 0,
                            batch_size: Optional[int] = None) -> np.ndarray:
        """Average output distribution over ``trajectories`` random runs."""
        probs = self.accumulate(
            ops, measured_qubits, trajectories,
            first_trajectory=first_trajectory, batch_size=batch_size,
        ) / trajectories
        if readout is not None:
            probs = readout.restrict(measured_qubits).apply_to_distribution(
                probs, range(len(measured_qubits))
            )
        return probs

    def run(self, ops: Sequence[NoisyOp], measured_qubits: Sequence[int],
            shots: int = 1024, trajectories: int = 64,
            readout: Optional[ReadoutModel] = None) -> Dict[str, int]:
        """Sample ``shots`` measurement outcomes (qubit 0 rightmost)."""
        probs = self.output_distribution(ops, measured_qubits, trajectories,
                                         readout)
        return distribution_to_counts(
            probs, shots, np.random.default_rng(self._root.entropy)
        )
