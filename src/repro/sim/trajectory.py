"""Monte-Carlo trajectory execution of a noisy, timed instruction stream.

The device backend (:mod:`repro.device.backend`) lowers a scheduled circuit
into a flat, time-ordered list of :class:`NoisyOp` events:

* ``gate`` events carry the unitary to apply plus a depolarizing
  probability (the gate's independent or crosstalk-conditional error rate);
* ``decay`` events carry amplitude-damping / phase-flip probabilities for a
  stretch of idle (or in-gate) time on one qubit.

:class:`TrajectorySimulator` averages the exact output distribution of many
stochastic trajectories, then samples shot counts — which converges much
faster than per-shot simulation for the shot budgets the paper uses (1024+).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.channels import (
    ReadoutModel,
    distribution_to_counts,
    two_qubit_depolarizing_paulis,
)
from repro.sim.statevector import Statevector
from repro.sim.unitaries import gate_unitary, pauli_matrix

_PAULI_1Q = ("X", "Y", "Z")
_PAULI_2Q = two_qubit_depolarizing_paulis()


@dataclass(frozen=True)
class NoisyOp:
    """One event in the lowered noisy instruction stream.

    ``kind`` is ``"gate"`` or ``"decay"``.  For gates, ``error_prob`` is the
    depolarizing probability applied after the unitary.  For decay events,
    ``gamma`` is the amplitude-damping probability and ``p_z`` the phase-flip
    probability, both acting on ``qubits[0]``.
    """

    kind: str
    qubits: Tuple[int, ...]
    name: str = ""
    params: Tuple[float, ...] = ()
    error_prob: float = 0.0
    gamma: float = 0.0
    p_z: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("gate", "decay"):
            raise ValueError(f"unknown NoisyOp kind {self.kind!r}")
        if self.kind == "decay" and len(self.qubits) != 1:
            raise ValueError("decay events act on exactly one qubit")
        for p in (self.error_prob, self.gamma, self.p_z):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability {p} outside [0, 1]")

    @classmethod
    def gate(cls, name: str, qubits: Sequence[int], params: Sequence[float] = (),
             error_prob: float = 0.0) -> "NoisyOp":
        return cls("gate", tuple(qubits), name=name, params=tuple(params),
                   error_prob=error_prob)

    @classmethod
    def decay(cls, qubit: int, gamma: float, p_z: float) -> "NoisyOp":
        return cls("decay", (qubit,), gamma=gamma, p_z=p_z)


class TrajectorySimulator:
    """Runs :class:`NoisyOp` streams via Monte-Carlo wavefunction sampling."""

    def __init__(self, num_qubits: int, seed=None):
        # ``seed`` is anything ``np.random.default_rng`` accepts — an int,
        # a ``SeedSequence`` (how the backend seeds per-chunk simulators),
        # or ``None`` for OS entropy.
        self.num_qubits = num_qubits
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _run_single_trajectory(self, ops: Sequence[NoisyOp]) -> Statevector:
        state = Statevector(self.num_qubits, self._rng)
        rng = self._rng
        for op in ops:
            if op.kind == "gate":
                state.apply_matrix(gate_unitary(op.name, op.params), op.qubits)
                if op.error_prob > 0.0 and rng.random() < op.error_prob:
                    labels = _PAULI_2Q if len(op.qubits) == 2 else _PAULI_1Q
                    label = labels[rng.integers(len(labels))]
                    state.apply_matrix(pauli_matrix(label), op.qubits)
            else:
                self._apply_decay(state, op)
        return state

    def _apply_decay(self, state: Statevector, op: NoisyOp) -> None:
        qubit = op.qubits[0]
        if op.gamma > 0.0:
            # Amplitude damping via proper trajectory branching: the jump
            # branch |1> -> |0> fires with probability gamma * P(|1>).
            p1 = state.probability_of_one(qubit)
            p_jump = op.gamma * p1
            if self._rng.random() < p_jump:
                # K1 = sqrt(gamma) |0><1| : project onto |1> then flip to |0>.
                state.project(qubit, 1)
                state.apply_matrix(pauli_matrix("X"), (qubit,))
            else:
                # K0 = diag(1, sqrt(1-gamma)), renormalized.
                k0 = np.array(
                    [[1.0, 0.0], [0.0, math.sqrt(1.0 - op.gamma)]], dtype=complex
                )
                state.apply_matrix(k0, (qubit,))
                state.renormalize()
        if op.p_z > 0.0 and self._rng.random() < op.p_z:
            state.apply_matrix(pauli_matrix("Z"), (qubit,))

    # ------------------------------------------------------------------
    def accumulate(self, ops: Sequence[NoisyOp],
                   measured_qubits: Sequence[int],
                   trajectories: int) -> np.ndarray:
        """Unnormalized sum of ``trajectories`` output distributions.

        The building block for parallel trajectory execution: the backend
        splits the trajectory budget into fixed-size chunks, runs each
        chunk on its own independently seeded simulator, and sums the
        partial accumulators in chunk order — so the merged distribution is
        bitwise identical for every worker count.
        """
        if trajectories <= 0:
            raise ValueError("need at least one trajectory")
        total = np.zeros(2 ** len(measured_qubits))
        for _ in range(trajectories):
            state = self._run_single_trajectory(ops)
            total += state.probabilities(measured_qubits)
        return total

    def output_distribution(self, ops: Sequence[NoisyOp],
                            measured_qubits: Sequence[int],
                            trajectories: int = 64,
                            readout: Optional[ReadoutModel] = None) -> np.ndarray:
        """Average output distribution over ``trajectories`` random runs.

        The result indexes bitstrings little-endian over ``measured_qubits``
        (bit ``k`` of the index = outcome of ``measured_qubits[k]``).
        """
        probs = self.accumulate(ops, measured_qubits, trajectories) / trajectories
        if readout is not None:
            probs = readout.restrict(measured_qubits).apply_to_distribution(
                probs, range(len(measured_qubits))
            )
        return probs

    def run(self, ops: Sequence[NoisyOp], measured_qubits: Sequence[int],
            shots: int = 1024, trajectories: int = 64,
            readout: Optional[ReadoutModel] = None) -> Dict[str, int]:
        """Sample ``shots`` measurement outcomes (bitstring keys, qubit 0 of
        ``measured_qubits`` rightmost)."""
        probs = self.output_distribution(ops, measured_qubits, trajectories, readout)
        return distribution_to_counts(probs, shots, self._rng)
