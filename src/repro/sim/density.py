"""Exact density-matrix simulation of noisy instruction streams.

The Monte-Carlo trajectory executor (:mod:`repro.sim.trajectory`) converges
to the channel-exact result as trajectories grow; this module computes that
limit directly by evolving the density matrix through the same
:class:`~repro.sim.trajectory.NoisyOp` stream with Kraus superoperators.

Memory is O(4^n), so this engine is for small systems (the default cap is
10 qubits) — exactly the regime of the paper's application circuits — and
for validating the trajectory engine in tests and benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.channels import (
    ReadoutModel,
    amplitude_damping_kraus,
    phase_damping_kraus,
)
from repro.sim.trajectory import NoisyOp
from repro.sim.unitaries import gate_unitary, pauli_matrix, two_qubit_pauli_labels

_PAULI_1Q = ("X", "Y", "Z")
_PAULI_2Q = two_qubit_pauli_labels()


class DensityMatrix:
    """Mutable density matrix over ``num_qubits`` qubits (little-endian)."""

    def __init__(self, num_qubits: int):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        if num_qubits > 10:
            raise ValueError("density-matrix simulation beyond 10 qubits "
                             "is not supported (memory)")
        self.num_qubits = num_qubits
        dim = 2 ** num_qubits
        self._rho = np.zeros((dim, dim), dtype=complex)
        self._rho[0, 0] = 1.0

    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        return self._rho

    def trace(self) -> float:
        return float(np.real(np.trace(self._rho)))

    def purity(self) -> float:
        return float(np.real(np.trace(self._rho @ self._rho)))

    # ------------------------------------------------------------------
    def _embed(self, op: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Expand a k-qubit operator to the full Hilbert space."""
        k = len(qubits)
        n = self.num_qubits
        dim = 2 ** n
        full = np.zeros((dim, dim), dtype=complex)
        for col in range(dim):
            sub_in = sum(((col >> q) & 1) << j for j, q in enumerate(qubits))
            base = col & ~sum(1 << q for q in qubits)
            for sub_out in range(2 ** k):
                row = base | sum(((sub_out >> j) & 1) << q
                                 for j, q in enumerate(qubits))
                amp = op[sub_out, sub_in]
                if amp != 0:
                    full[row, col] += amp
        return full

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        u = self._embed(matrix, qubits)
        self._rho = u @ self._rho @ u.conj().T

    def apply_kraus(self, kraus_ops: Sequence[np.ndarray],
                    qubits: Sequence[int]) -> None:
        out = np.zeros_like(self._rho)
        for k in kraus_ops:
            full = self._embed(k, qubits)
            out += full @ self._rho @ full.conj().T
        self._rho = out

    # ------------------------------------------------------------------
    def apply_noisy_op(self, op: NoisyOp) -> None:
        """Apply one lowered event exactly (channel form)."""
        if op.kind == "gate":
            self.apply_unitary(gate_unitary(op.name, op.params), op.qubits)
            if op.error_prob > 0.0:
                labels = _PAULI_2Q if len(op.qubits) == 2 else _PAULI_1Q
                kraus = [math.sqrt(1.0 - op.error_prob)
                         * np.eye(2 ** len(op.qubits), dtype=complex)]
                kraus.extend(
                    math.sqrt(op.error_prob / len(labels)) * pauli_matrix(lab)
                    for lab in labels
                )
                self.apply_kraus(kraus, op.qubits)
        else:
            qubit = op.qubits[0]
            if op.gamma > 0.0:
                self.apply_kraus(amplitude_damping_kraus(op.gamma), (qubit,))
            if op.p_z > 0.0:
                # phase-flip channel with probability p_z
                kraus = [
                    math.sqrt(1.0 - op.p_z) * np.eye(2, dtype=complex),
                    math.sqrt(op.p_z) * pauli_matrix("Z"),
                ]
                self.apply_kraus(kraus, (qubit,))

    # ------------------------------------------------------------------
    def probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Joint outcome distribution over ``qubits`` (little-endian)."""
        diag = np.real(np.diag(self._rho))
        k = len(qubits)
        probs = np.zeros(2 ** k)
        for basis, p in enumerate(diag):
            idx = sum(((basis >> q) & 1) << j for j, q in enumerate(qubits))
            probs[idx] += p
        return probs

    def expectation(self, pauli_label: str, qubits: Sequence[int]) -> float:
        op = self._embed(pauli_matrix(pauli_label), qubits)
        return float(np.real(np.trace(op @ self._rho)))


def exact_output_distribution(ops: Sequence[NoisyOp], num_qubits: int,
                              measured_qubits: Sequence[int],
                              readout: Optional[ReadoutModel] = None
                              ) -> np.ndarray:
    """Channel-exact analogue of ``TrajectorySimulator.output_distribution``."""
    rho = DensityMatrix(num_qubits)
    for op in ops:
        rho.apply_noisy_op(op)
    probs = rho.probabilities(measured_qubits)
    if readout is not None:
        probs = readout.restrict(measured_qubits).apply_to_distribution(
            probs, range(len(measured_qubits))
        )
    return probs
