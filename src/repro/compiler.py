"""One-call compilation pipeline: logical circuit -> submittable circuit.

Chains the stages the paper's toolflow runs (Figure 2): layout (optional
region selection for line workloads), routing to the coupling map, basis
decomposition, and crosstalk-adaptive scheduling.  This is the entry point
a downstream user would call; every stage remains individually accessible
for custom flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.core.characterization.report import CrosstalkReport
from repro.core.scheduling.baselines import disable_sched, par_sched, serial_sched
from repro.core.scheduling.xtalk import ScheduledCircuit, XtalkScheduler
from repro.device.device import Device
from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.routing import route_circuit
from repro.transpiler.scheduling import hardware_schedule

SCHEDULER_CHOICES = ("xtalk", "par", "serial", "disable")


@dataclass
class CompilationResult:
    """Everything the pipeline produced."""

    circuit: QuantumCircuit            #: ready for NoisyBackend.run
    layout: Tuple[int, ...]            #: logical qubit -> device qubit
    scheduler: str
    duration: float                    #: hardware-schedule makespan (ns)
    scheduled: Optional[ScheduledCircuit] = None  #: XtalkSched artifacts

    @property
    def serialized_pairs(self) -> Tuple[Tuple[int, int], ...]:
        if self.scheduled is None:
            return ()
        return self.scheduled.serialized_pairs


def compile_circuit(circuit: QuantumCircuit, device: Device,
                    report: Optional[CrosstalkReport] = None,
                    scheduler: str = "xtalk", omega: float = 0.5,
                    initial_layout: Optional[Sequence[int]] = None,
                    day: int = 0) -> CompilationResult:
    """Compile a logical circuit for a device.

    Args:
        circuit: logical circuit; two-qubit gates may be non-adjacent
            (SWAPs are inserted) and may use swap/cz macros (lowered to
            CNOTs).  Measurements are preserved; clbits keep their ids.
        device: target device (only compiler-visible data is used).
        report: crosstalk characterization; required for the ``"xtalk"``
            scheduler (run a :class:`CharacterizationCampaign` to get one).
        scheduler: ``"xtalk"`` (default), ``"par"``, ``"serial"``, or
            ``"disable"`` (the blanket nearby-gate-disable policy).
        omega: XtalkSched's crosstalk weight factor.
        initial_layout: logical->device placement; defaults to identity.

    Returns:
        A :class:`CompilationResult` whose ``circuit`` is hardware-ready.
    """
    if scheduler not in SCHEDULER_CHOICES:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; pick from {SCHEDULER_CHOICES}"
        )
    if scheduler == "xtalk" and report is None:
        raise ValueError("the xtalk scheduler needs a characterization report")

    routed, layout = route_circuit(circuit, device.coupling,
                                   initial_layout=initial_layout)
    lowered = decompose_to_basis(routed)
    lowered.name = circuit.name

    calibration = device.calibration(day)
    scheduled: Optional[ScheduledCircuit] = None
    if scheduler == "xtalk":
        xs = XtalkScheduler(calibration, report, omega=omega)
        scheduled = xs.schedule(lowered)
        final = scheduled.circuit
    elif scheduler == "par":
        final = par_sched(lowered)
    elif scheduler == "serial":
        final = serial_sched(lowered)
    else:
        final = disable_sched(lowered, device.coupling)

    duration = hardware_schedule(final, calibration.durations).makespan()
    return CompilationResult(
        circuit=final,
        layout=tuple(layout),
        scheduler=scheduler,
        duration=duration,
        scheduled=scheduled,
    )
