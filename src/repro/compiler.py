"""One-call compilation: a thin compat wrapper over :mod:`repro.pipeline`.

Historically this module chained the Figure 2 stages by hand; the stages now
live in :mod:`repro.pipeline.passes` and are run by the instrumented
:class:`~repro.pipeline.runner.Pipeline`.  :func:`compile_circuit` keeps its
exact signature and output — instruction-for-instruction the same scheduled
circuit and makespan as the historical implementation — while additionally
exposing the per-pass trace on :attr:`CompilationResult.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.core.characterization.report import CrosstalkReport
from repro.core.scheduling.xtalk import ScheduledCircuit
from repro.device.device import Device
from repro.pipeline.context import PassContext
from repro.pipeline.runner import Pipeline, build_compile_pipeline
from repro.pipeline.trace import PipelineTrace

SCHEDULER_CHOICES = ("xtalk", "par", "serial", "disable")


@dataclass
class CompilationResult:
    """Everything the pipeline produced."""

    circuit: QuantumCircuit            #: ready for NoisyBackend.run
    layout: Tuple[int, ...]            #: logical qubit -> device qubit
    scheduler: str
    duration: float                    #: hardware-schedule makespan (ns)
    scheduled: Optional[ScheduledCircuit] = None  #: XtalkSched artifacts
    trace: Optional[PipelineTrace] = None  #: per-pass timing and counters

    @property
    def serialized_pairs(self) -> Tuple[Tuple[int, int], ...]:
        if self.scheduled is None:
            return ()
        return self.scheduled.serialized_pairs


def compile_pipeline(scheduler: str = "xtalk",
                     select_region: bool = False) -> Pipeline:
    """The full compile pipeline for one policy (``repro.pipeline`` alias)."""
    return build_compile_pipeline(scheduler, select_region=select_region)


def compile_circuit(circuit: QuantumCircuit, device: Device,
                    report: Optional[CrosstalkReport] = None,
                    scheduler: str = "xtalk", omega: float = 0.5,
                    initial_layout: Optional[Sequence[int]] = None,
                    day: int = 0,
                    max_solve_seconds: Optional[float] = None,
                    fallback: str = "incumbent") -> CompilationResult:
    """Compile a logical circuit for a device.

    Args:
        circuit: logical circuit; two-qubit gates may be non-adjacent
            (SWAPs are inserted) and may use swap/cz macros (lowered to
            CNOTs).  Measurements are preserved; clbits keep their ids.
        device: target device (only compiler-visible data is used).
        report: crosstalk characterization; required for the ``"xtalk"``
            scheduler (run a :class:`CharacterizationCampaign` to get one).
        scheduler: ``"xtalk"`` (default), ``"par"``, ``"serial"``, or
            ``"disable"`` (the blanket nearby-gate-disable policy).
        omega: XtalkSched's crosstalk weight factor.
        initial_layout: logical->device placement; defaults to identity.
        max_solve_seconds: XtalkSched solver budget; when exhausted the
            scheduler degrades per ``fallback`` instead of raising (see
            ``docs/resilience.md``).
        fallback: ``"incumbent"`` (keep the solver's best-so-far valid
            schedule) or ``"par"`` (submit unchanged, ParSched-style).

    Returns:
        A :class:`CompilationResult` whose ``circuit`` is hardware-ready and
        whose ``trace`` carries the per-pass wall times and counters.
    """
    if scheduler not in SCHEDULER_CHOICES:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; pick from {SCHEDULER_CHOICES}"
        )
    if scheduler == "xtalk" and report is None:
        raise ValueError("the xtalk scheduler needs a characterization report")

    context = PassContext(
        device=device,
        day=day,
        report=report,
        omega=omega,
        initial_layout=initial_layout,
        circuit=circuit,
    )
    scheduler_kwargs = None
    if scheduler == "xtalk" and max_solve_seconds is not None:
        scheduler_kwargs = {
            "max_solve_seconds": max_solve_seconds,
            "fallback": fallback,
        }
    build_compile_pipeline(scheduler, scheduler_kwargs=scheduler_kwargs).run(context)
    return CompilationResult(
        circuit=context.circuit,
        layout=tuple(context.layout),
        scheduler=scheduler,
        duration=context.duration,
        scheduled=context.scheduled,
        trace=context.trace,
    )
