"""repro — reproduction of "Software Mitigation of Crosstalk on NISQ
Computers" (Murali et al., ASPLOS 2020).

Quick tour of the public API::

    from repro import (
        ibmq_poughkeepsie, NoisyBackend,            # simulated hardware
        CharacterizationCampaign, CharacterizationPolicy,  # Section 5
        XtalkScheduler, par_sched, serial_sched,    # Sections 6-7
        QuantumCircuit,                             # circuit IR
    )

See ``examples/quickstart.py`` for the end-to-end pipeline and
``benchmarks/`` for the drivers regenerating every figure of the paper.
"""

from repro.circuit import QuantumCircuit, Instruction, CircuitDag
from repro.device import (
    Device,
    NoisyBackend,
    CouplingMap,
    ibmq_poughkeepsie,
    ibmq_johannesburg,
    ibmq_boeblingen,
    all_devices,
)
from repro.core import (
    CrosstalkReport,
    CharacterizationCampaign,
    CharacterizationPolicy,
    XtalkScheduler,
    par_sched,
    serial_sched,
)
from repro.rb import RBExecutor
from repro.rb.executor import RBConfig
from repro.compiler import CompilationResult, compile_circuit
from repro.pipeline import (
    Pass,
    PassContext,
    Pipeline,
    PipelineTrace,
    ResultCache,
    TraceCollector,
    build_compile_pipeline,
)

__version__ = "1.1.0"

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "CircuitDag",
    "Device",
    "NoisyBackend",
    "CouplingMap",
    "ibmq_poughkeepsie",
    "ibmq_johannesburg",
    "ibmq_boeblingen",
    "all_devices",
    "CrosstalkReport",
    "CharacterizationCampaign",
    "CharacterizationPolicy",
    "XtalkScheduler",
    "par_sched",
    "serial_sched",
    "RBExecutor",
    "RBConfig",
    "CompilationResult",
    "compile_circuit",
    "Pass",
    "PassContext",
    "Pipeline",
    "PipelineTrace",
    "ResultCache",
    "TraceCollector",
    "build_compile_pipeline",
    "__version__",
]
