"""Fork-inherited shared payloads: (near-)zero-copy task context fan-out.

The pre-change fan-out shipped each map's ``context`` — compiled event
streams, calibration tables, whole device models — by value: pickled into
the pool initializer args and inflated once per worker process.  For the
trajectory and tomography hot paths that pickle dwarfs the per-task
message, so the fork/IPC tax scaled with context size rather than task
count.

:class:`SharedPayload` keeps the large object in a parent-process module
global (:data:`_STORE`) and pickles as just a key token.  On platforms
whose :mod:`multiprocessing` start method is ``fork`` (Linux, the only
platform CI runs), pool workers inherit :data:`_STORE` copy-on-write at
fork time, so the worker-side lookup is a dict hit against already-mapped
memory — zero copies, zero inflation.  On spawn-based platforms the
payload degrades gracefully by shipping its value alongside the key, so
callers never need to branch on start method.

Bookkeeping lands in the process registry:

* ``parallel.payload.bytes`` — gauge, pickled size of the most recently
  registered payload;
* ``parallel.payload.count`` — counter, payloads registered;
* ``parallel.payload.saved_bytes`` — counter, bytes *not* shipped because
  a payload crossed a process boundary as a bare key.

:class:`~repro.parallel.engine.ParallelEngine` unwraps payloads
transparently (see :func:`unwrap_payload`): task functions always receive
the raw context value, whether the map ran serially, via probe fallback,
or on the pool.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
from typing import Any, Dict

from repro.obs.registry import get_registry

#: Parent-process payload store, inherited by fork-started pool workers.
_STORE: Dict[str, Any] = {}

#: Monotonic suffix making payload keys unique within a process.
_COUNTER = itertools.count()


def fork_inherits_globals() -> bool:
    """Whether pool workers inherit this module's globals (fork start)."""
    try:
        return multiprocessing.get_start_method() == "fork"
    except Exception:  # pragma: no cover - exotic mp configurations
        return False


def payload_nbytes(value: Any) -> int:
    """Pickled size of ``value`` in bytes (0 when unpicklable)."""
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


class SharedPayload:
    """A large read-only task context registered for zero-copy fan-out.

    Construct once per fan-out with the full context value; pass the
    payload object itself as the engine's ``context``.  Pickling the
    payload ships only ``(key, nbytes)`` when workers inherit the store
    via fork, and falls back to shipping the value on spawn platforms.
    Call :meth:`release` (or use the payload as a context manager) when
    the fan-out is done to drop the parent-side reference.
    """

    __slots__ = ("key", "nbytes", "_fallback")

    def __init__(self, value: Any, name: str = "payload"):
        self.key = f"{name}.{os.getpid()}.{next(_COUNTER)}"
        self.nbytes = payload_nbytes(value)
        self._fallback = None
        _STORE[self.key] = value
        registry = get_registry()
        registry.inc("parallel.payload.count")
        registry.set("parallel.payload.bytes", float(self.nbytes))

    @property
    def value(self) -> Any:
        """The registered context: a store hit in the parent and in
        fork-started workers, the shipped fallback on spawn platforms."""
        if self.key in _STORE:
            return _STORE[self.key]
        return self._fallback

    def release(self) -> None:
        """Drop the parent-side store entry (idempotent)."""
        _STORE.pop(self.key, None)

    def __enter__(self) -> "SharedPayload":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------
    def __getstate__(self):
        if fork_inherits_globals():
            get_registry().inc(
                "parallel.payload.saved_bytes", float(self.nbytes)
            )
            return (self.key, self.nbytes, None)
        return (self.key, self.nbytes, _STORE.get(self.key))

    def __setstate__(self, state) -> None:
        self.key, self.nbytes, self._fallback = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedPayload(key={self.key!r}, nbytes={self.nbytes})"


def unwrap_payload(context: Any) -> Any:
    """``context.value`` for a :class:`SharedPayload`, else ``context``.

    The engine calls this at every task site so task functions stay
    payload-agnostic.
    """
    if isinstance(context, SharedPayload):
        return context.value
    return context
