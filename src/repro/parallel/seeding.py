"""Stable, submission-order-independent seeding for parallel work units.

Fanning work out over processes breaks the historical "one shared RNG
stream" seeding: results would depend on which worker ran first and on the
order tasks were submitted.  Instead, every independent work unit derives
its own :class:`numpy.random.SeedSequence` from a *stable key* — a tuple of
plain values identifying the unit (device fingerprint, calibration day,
campaign seed, target tuple, ...).  Two runs that describe the same work
get the same stream, no matter how many workers execute it or in which
order the units are submitted.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np


def _canonical(value: Any) -> Any:
    """Reduce a key part to a JSON-stable structure.

    Tuples and lists map to lists, sets are sorted, numpy scalars collapse
    to Python scalars; anything else falls back to ``repr`` (stable for the
    value types used in keys: strings, ints, floats, tuples thereof).
    """
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical(v) for v in value), key=repr)
    if isinstance(value, dict):
        return sorted(
            ([_canonical(k), _canonical(v)] for k, v in value.items()),
            key=repr,
        )
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def stable_entropy(*parts: Any) -> int:
    """A 128-bit integer deterministically derived from ``parts``.

    The digest is taken over a canonical JSON rendering, so the same key
    produces the same entropy across processes, platforms, and sessions.
    """
    blob = json.dumps(_canonical(list(parts)), sort_keys=True,
                      separators=(",", ":"))
    digest = hashlib.sha256(blob.encode()).digest()
    return int.from_bytes(digest[:16], "big")


def stable_seed_sequence(*parts: Any) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` rooted at the stable key.

    Use :meth:`~numpy.random.SeedSequence.spawn` to derive independent
    child streams (e.g. one per trajectory chunk) whose values do not
    depend on how the chunks are distributed over workers.
    """
    return np.random.SeedSequence(stable_entropy(*parts))


def stable_rng(*parts: Any) -> np.random.Generator:
    """A generator seeded from the stable key (PCG64 via ``default_rng``)."""
    return np.random.default_rng(stable_seed_sequence(*parts))
