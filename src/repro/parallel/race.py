"""Deterministic portfolio races: run competing strategies, pick one winner.

A *race* runs several entrants at the same problem and keeps a single
winner.  The naive version — first to return wins — is wall-clock
dependent and therefore irreproducible: the winner would change with
worker count, machine load, even scheduler jitter.
:func:`race_to_first_good` replaces wall-clock order with **canonical-key
order**:

* entrants are sorted by their key (a stable string the caller chooses);
* the winner is the *first entrant in key order* whose result is "good"
  (caller-defined predicate);
* when nothing is good, the winner is the best by ``(score, key)``.

Under this rule the winner is a pure function of the entrant results, so
it is invariant to worker count and repetition.  It also licenses the one
optimization a deterministic race allows: the serial path may stop at the
first good entrant in key order, because no later entrant could have
beaten it.  The pool path runs everything concurrently and applies the
same selection, so ``REPRO_WORKERS=1`` and ``=4`` agree bitwise on the
winner.

Entrant failures are not fatal: a raised exception marks that entrant
not-good with an infinite score, and the race reports it in its outcome
record.  Only a race in which *every* entrant fails raises.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple,
)

from repro.obs.events import log_event
from repro.obs.trace import span as obs_span
from repro.parallel.engine import ParallelEngine, resolve_workers
from repro.resilience.errors import TaskFailure


@dataclass(frozen=True)
class RaceOutcome:
    """One entrant's result: what it returned and how it was judged."""

    key: str
    value: Any  #: the runner's return value, or None when failed/skipped
    good: bool
    score: float
    ran: bool  #: False when the serial path early-exited before this entrant
    error: Optional[str] = None  #: repr of the failure, when the entrant raised


@dataclass(frozen=True)
class RaceResult:
    """The race verdict: a winner plus the full outcome record."""

    winner: Any
    winner_key: str
    outcomes: Tuple[RaceOutcome, ...]
    mode: str  #: "serial-early-exit", "serial", or "pool"
    seconds: float

    @property
    def winner_good(self) -> bool:
        for outcome in self.outcomes:
            if outcome.key == self.winner_key:
                return outcome.good
        return False  # pragma: no cover - winner always has an outcome


def _judge(key: str, value: Any, is_good, score) -> RaceOutcome:
    good = bool(is_good(value))
    try:
        points = float(score(value))
    except Exception:
        points = math.inf
    if math.isnan(points):
        points = math.inf
    return RaceOutcome(key=key, value=value, good=good, score=points, ran=True)


def _failed(key: str, error: Any, ran: bool = True) -> RaceOutcome:
    return RaceOutcome(
        key=key, value=None, good=False, score=math.inf, ran=ran,
        error=repr(error) if error is not None else None,
    )


def _select(outcomes: Sequence[RaceOutcome]) -> RaceOutcome:
    """First good entrant in key order, else best by ``(score, key)``."""
    for outcome in outcomes:  # outcomes arrive in canonical key order
        if outcome.good:
            return outcome
    ranked = [o for o in outcomes if o.ran and o.value is not None]
    if not ranked:
        raise RuntimeError("every race entrant failed")
    return min(ranked, key=lambda o: (o.score, o.key))


def race_to_first_good(
    entrants: Sequence[Tuple[str, Any]],
    runner: Callable[[Any, Any], Any],
    context: Any = None,
    *,
    is_good: Callable[[Any], bool],
    score: Callable[[Any], float],
    workers: Optional[int] = None,
    engine: Optional[ParallelEngine] = None,
    name: str = "race",
) -> RaceResult:
    """Race ``runner(context, payload)`` over ``entrants`` deterministically.

    ``entrants`` is a sequence of ``(key, payload)``; keys must be unique
    strings and define the canonical order.  ``runner`` must be a
    module-level function (picklable) when more than one worker is in
    play, as must ``context`` and every payload.

    The winner is the first entrant in sorted-key order judged good by
    ``is_good``, else the lowest ``(score(value), key)`` among those that
    produced a value.  Serial execution early-exits at the first good
    entrant; pool execution runs everything — the winner is identical
    either way.
    """
    items = sorted(entrants, key=lambda pair: pair[0])
    keys = [key for key, _ in items]
    if len(set(keys)) != len(keys):
        raise ValueError("race entrant keys must be unique")
    if not items:
        raise ValueError("race needs at least one entrant")
    effective = resolve_workers(engine.workers if engine is not None else workers)
    started = time.perf_counter()
    outcomes: List[RaceOutcome] = []
    with obs_span(f"parallel.race[{name}]") as record:
        record.counters["parallel.race.entrants"] = float(len(items))
        record.counters["parallel.race.workers"] = float(effective)
        if effective == 1 or len(items) == 1:
            mode = "serial"
            for key, payload in items:
                try:
                    value = runner(context, payload)
                except Exception as error:
                    outcomes.append(_failed(key, error))
                    continue
                outcome = _judge(key, value, is_good, score)
                outcomes.append(outcome)
                if outcome.good:
                    # No later key can beat an earlier good one.
                    mode = "serial-early-exit"
                    for skipped_key, _ in items[len(outcomes):]:
                        outcomes.append(RaceOutcome(
                            key=skipped_key, value=None, good=False,
                            score=math.inf, ran=False,
                        ))
                    break
        else:
            mode = "pool"
            own_engine = engine is None
            pool = engine if engine is not None else ParallelEngine(
                workers=effective, name=name,
            )
            try:
                values = pool.map(
                    runner, [payload for _, payload in items],
                    context, keys=keys, return_failures=True,
                )
            finally:
                if own_engine:
                    pool.close()
            for key, value in zip(keys, values):
                if isinstance(value, TaskFailure):
                    outcomes.append(_failed(key, value.cause or value))
                else:
                    outcomes.append(_judge(key, value, is_good, score))
        winner = _select(outcomes)
        seconds = time.perf_counter() - started
        record.counters["parallel.race.good"] = float(
            sum(1 for o in outcomes if o.good))
        record.counters["parallel.race.failed"] = float(
            sum(1 for o in outcomes if o.error is not None))
        record.counters["parallel.race.seconds"] = seconds
        log_event(
            "parallel.race",
            name=name,
            winner=winner.key,
            mode=mode,
            entrants=len(items),
            good=sum(1 for o in outcomes if o.good),
            failed=sum(1 for o in outcomes if o.error is not None),
            seconds=seconds,
        )
    return RaceResult(
        winner=winner.value,
        winner_key=winner.key,
        outcomes=tuple(outcomes),
        mode=mode,
        seconds=seconds,
    )
