"""Process-pool fan-out for embarrassingly parallel work units.

The repository's three hot loops — SRB characterization experiments,
trajectory batches, and tomography settings — are all lists of independent
tasks.  :class:`ParallelEngine` runs such a list either serially (the
``workers=1`` fallback) or over a :class:`~concurrent.futures.ProcessPoolExecutor`,
and reports cost through the same counter namespace the pipeline passes
use:

* ``parallel.workers`` — worker processes used for the fan-out;
* ``parallel.tasks`` — tasks executed;
* ``parallel.serial_seconds_estimate`` — summed in-task wall time, i.e.
  what a serial run of the same tasks would have cost;
* ``parallel.wall_seconds`` — actual wall time of the fan-out.

Each :meth:`map` call also opens a nested :func:`repro.obs.trace.span`
named ``parallel.map[{engine.name}]`` carrying per-map detail in the
``parallel.map.*`` namespace (task count, queue/exec seconds), so the
fan-out appears as a child wherever it runs — under a pipeline pass, a
campaign stage, or a session root.  Per-task queue and execution timings
additionally feed the process-wide
:class:`~repro.obs.registry.MetricsRegistry` histograms
``parallel.task.queue_seconds`` and ``parallel.task.exec_seconds``, and
metric deltas recorded *inside* pool workers (``rb.*`` counters, solver
counters) are shipped back per task and merged into the parent-process
registry — registry totals are worker-count invariant.

Worker count resolution order: explicit ``workers=`` keyword, then the
``REPRO_WORKERS`` environment variable, then serial.  Inside a pool worker
the engine always resolves to serial so nested fan-outs (a tomography
setting running trajectory batches) never oversubscribe.

Task functions must be module-level (picklable) and are called as
``fn(context, item)``; the ``context`` object is shipped to each worker
once via the pool initializer rather than once per task.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.trace import span as obs_span

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Worker-process state, installed by the pool initializer.
_WORKER_CONTEXT: Any = None
_IN_WORKER = False


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Precedence: the ``workers`` keyword if given, else the
    ``REPRO_WORKERS`` environment variable, else 1 (serial).  Inside a pool
    worker this always returns 1 so nested parallelism stays serial.
    """
    if _IN_WORKER:
        return 1
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={env!r} is not an integer worker count"
            ) from None
    return max(1, int(workers))


def _init_worker(context: Any) -> None:
    global _WORKER_CONTEXT, _IN_WORKER
    _WORKER_CONTEXT = context
    _IN_WORKER = True


def _run_task(fn: Callable[[Any, Any], Any], index: int, item: Any):
    """Execute one task in a pool worker.

    Returns ``(index, value, exec_seconds, start_ts, metrics_delta)``:
    ``start_ts`` is the worker's wall clock at task start (the parent
    subtracts its submit timestamp to estimate queue time), and
    ``metrics_delta`` is the task's contribution to the worker-local
    :class:`~repro.obs.registry.MetricsRegistry`, shipped back for the
    parent to merge so process-wide metrics stay worker-count invariant.
    """
    registry = get_registry()
    before = registry.snapshot()
    start_ts = time.time()
    started = time.perf_counter()
    value = fn(_WORKER_CONTEXT, item)
    seconds = time.perf_counter() - started
    delta = MetricsRegistry.diff(before, registry.snapshot())
    return index, value, seconds, start_ts, delta


class ParallelEngine:
    """Maps a task function over independent items, serially or in a pool.

    One engine accumulates ``parallel.*`` counters across every
    :meth:`map` call so a caller can snapshot them into a
    :class:`~repro.obs.trace.Span` (``span.counters.update(
    engine.counters)``).
    """

    def __init__(self, workers: Optional[int] = None, name: str = "parallel"):
        self.workers = resolve_workers(workers)
        self.name = name
        self.counters: Dict[str, float] = {
            "parallel.workers": float(self.workers),
            "parallel.tasks": 0.0,
            "parallel.serial_seconds_estimate": 0.0,
            "parallel.wall_seconds": 0.0,
        }
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_context: Any = None

    # ------------------------------------------------------------------
    def _ensure_pool(self, context: Any) -> ProcessPoolExecutor:
        """The engine's pool, created lazily and reused across map calls.

        Workers receive ``context`` through the pool initializer, so a map
        with a different context object tears the pool down and forks a
        fresh one; repeated maps with one context (the campaign's two
        stages) pay the startup cost once.
        """
        if self._pool is not None and self._pool_context is not context:
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(context,),
            )
            self._pool_context = context
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; serial engines no-op)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_context = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any, Any], Any], items: Iterable[Any],
            context: Any = None) -> List[Any]:
        """Run ``fn(context, item)`` for every item, preserving item order.

        ``fn`` must be a module-level function and, when more than one
        worker is in play, ``context``, every item, and every result must
        be picklable.  Task exceptions propagate to the caller.
        """
        work: Sequence[Any] = list(items)
        registry = get_registry()
        with obs_span(f"parallel.map[{self.name}]") as record:
            record.counters["parallel.map.workers"] = float(self.workers)
            record.counters["parallel.map.tasks"] = float(len(work))
            started = time.perf_counter()
            if self.workers == 1 or len(work) <= 1:
                results = []
                for item in work:
                    t0 = time.perf_counter()
                    results.append(fn(context, item))
                    seconds = time.perf_counter() - t0
                    self.counters["parallel.serial_seconds_estimate"] += seconds
                    record.add("parallel.map.exec_seconds", seconds)
                    registry.observe("parallel.task.exec_seconds", seconds)
                    registry.inc("parallel.tasks")
            else:
                results = [None] * len(work)
                pool = self._ensure_pool(context)
                futures = []
                submitted = []
                for i, item in enumerate(work):
                    submitted.append(time.time())
                    futures.append(pool.submit(_run_task, fn, i, item))
                try:
                    for future, submit_ts in zip(futures, submitted):
                        index, value, seconds, start_ts, delta = future.result()
                        results[index] = value
                        queue_seconds = max(0.0, start_ts - submit_ts)
                        self.counters["parallel.serial_seconds_estimate"] += seconds
                        record.add("parallel.map.exec_seconds", seconds)
                        record.add("parallel.map.queue_seconds", queue_seconds)
                        registry.observe("parallel.task.exec_seconds", seconds)
                        registry.observe("parallel.task.queue_seconds",
                                         queue_seconds)
                        registry.inc("parallel.tasks")
                        registry.merge(delta)
                except BaseException:
                    self.close()
                    raise
            wall = time.perf_counter() - started
            self.counters["parallel.tasks"] += float(len(work))
            self.counters["parallel.wall_seconds"] += wall
            record.counters["parallel.map.wall_seconds"] = wall
        return results

    # ------------------------------------------------------------------
    def counters_since(self, baseline: Dict[str, float]) -> Dict[str, float]:
        """Counter deltas against a ``dict(engine.counters)`` snapshot.

        ``parallel.workers`` is a level, not an accumulator, so it is
        reported as-is rather than differenced.
        """
        out = {}
        for key, value in self.counters.items():
            if key == "parallel.workers":
                out[key] = value
            else:
                out[key] = value - baseline.get(key, 0.0)
        return out
