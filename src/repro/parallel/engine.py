"""Process-pool fan-out for embarrassingly parallel work units.

The repository's three hot loops — SRB characterization experiments,
trajectory batches, and tomography settings — are all lists of independent
tasks.  :class:`ParallelEngine` runs such a list either serially (the
``workers=1`` fallback) or over a :class:`~concurrent.futures.ProcessPoolExecutor`,
and reports cost through the same counter namespace the pipeline passes
use:

* ``parallel.workers`` — worker processes used for the fan-out;
* ``parallel.tasks`` — tasks executed;
* ``parallel.serial_seconds_estimate`` — summed in-task wall time, i.e.
  what a serial run of the same tasks would have cost;
* ``parallel.wall_seconds`` — actual wall time of the fan-out.

Worker count resolution order: explicit ``workers=`` keyword, then the
``REPRO_WORKERS`` environment variable, then serial.  Inside a pool worker
the engine always resolves to serial so nested fan-outs (a tomography
setting running trajectory batches) never oversubscribe.

Task functions must be module-level (picklable) and are called as
``fn(context, item)``; the ``context`` object is shipped to each worker
once via the pool initializer rather than once per task.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Worker-process state, installed by the pool initializer.
_WORKER_CONTEXT: Any = None
_IN_WORKER = False


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Precedence: the ``workers`` keyword if given, else the
    ``REPRO_WORKERS`` environment variable, else 1 (serial).  Inside a pool
    worker this always returns 1 so nested parallelism stays serial.
    """
    if _IN_WORKER:
        return 1
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={env!r} is not an integer worker count"
            ) from None
    return max(1, int(workers))


def _init_worker(context: Any) -> None:
    global _WORKER_CONTEXT, _IN_WORKER
    _WORKER_CONTEXT = context
    _IN_WORKER = True


def _run_task(fn: Callable[[Any, Any], Any], index: int, item: Any):
    started = time.perf_counter()
    value = fn(_WORKER_CONTEXT, item)
    return index, value, time.perf_counter() - started


class ParallelEngine:
    """Maps a task function over independent items, serially or in a pool.

    One engine accumulates ``parallel.*`` counters across every
    :meth:`map` call so a caller can snapshot them into a
    :class:`~repro.pipeline.trace.PassSpan` (``span.counters.update(
    engine.counters)``).
    """

    def __init__(self, workers: Optional[int] = None, name: str = "parallel"):
        self.workers = resolve_workers(workers)
        self.name = name
        self.counters: Dict[str, float] = {
            "parallel.workers": float(self.workers),
            "parallel.tasks": 0.0,
            "parallel.serial_seconds_estimate": 0.0,
            "parallel.wall_seconds": 0.0,
        }
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_context: Any = None

    # ------------------------------------------------------------------
    def _ensure_pool(self, context: Any) -> ProcessPoolExecutor:
        """The engine's pool, created lazily and reused across map calls.

        Workers receive ``context`` through the pool initializer, so a map
        with a different context object tears the pool down and forks a
        fresh one; repeated maps with one context (the campaign's two
        stages) pay the startup cost once.
        """
        if self._pool is not None and self._pool_context is not context:
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(context,),
            )
            self._pool_context = context
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; serial engines no-op)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_context = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any, Any], Any], items: Iterable[Any],
            context: Any = None) -> List[Any]:
        """Run ``fn(context, item)`` for every item, preserving item order.

        ``fn`` must be a module-level function and, when more than one
        worker is in play, ``context``, every item, and every result must
        be picklable.  Task exceptions propagate to the caller.
        """
        work: Sequence[Any] = list(items)
        started = time.perf_counter()
        if self.workers == 1 or len(work) <= 1:
            results = []
            for item in work:
                t0 = time.perf_counter()
                results.append(fn(context, item))
                self.counters["parallel.serial_seconds_estimate"] += (
                    time.perf_counter() - t0
                )
        else:
            results = [None] * len(work)
            pool = self._ensure_pool(context)
            futures = [
                pool.submit(_run_task, fn, i, item)
                for i, item in enumerate(work)
            ]
            try:
                for future in futures:
                    index, value, seconds = future.result()
                    results[index] = value
                    self.counters["parallel.serial_seconds_estimate"] += seconds
            except BaseException:
                self.close()
                raise
        self.counters["parallel.tasks"] += float(len(work))
        self.counters["parallel.wall_seconds"] += time.perf_counter() - started
        return results

    # ------------------------------------------------------------------
    def counters_since(self, baseline: Dict[str, float]) -> Dict[str, float]:
        """Counter deltas against a ``dict(engine.counters)`` snapshot.

        ``parallel.workers`` is a level, not an accumulator, so it is
        reported as-is rather than differenced.
        """
        out = {}
        for key, value in self.counters.items():
            if key == "parallel.workers":
                out[key] = value
            else:
                out[key] = value - baseline.get(key, 0.0)
        return out
