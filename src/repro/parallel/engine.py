"""Process-pool fan-out for embarrassingly parallel work units.

The repository's three hot loops — SRB characterization experiments,
trajectory batches, and tomography settings — are all lists of independent
tasks.  :class:`ParallelEngine` runs such a list either serially (the
``workers=1`` fallback) or over a :class:`~concurrent.futures.ProcessPoolExecutor`,
and reports cost through the same counter namespace the pipeline passes
use:

* ``parallel.workers`` — worker processes used for the fan-out;
* ``parallel.tasks`` — tasks executed;
* ``parallel.serial_seconds_estimate`` — summed in-task wall time, i.e.
  what a serial run of the same tasks would have cost;
* ``parallel.wall_seconds`` — actual wall time of the fan-out.

Each :meth:`map` call also opens a nested :func:`repro.obs.trace.span`
named ``parallel.map[{engine.name}]`` carrying per-map detail in the
``parallel.map.*`` namespace (task count, queue/exec seconds), so the
fan-out appears as a child wherever it runs — under a pipeline pass, a
campaign stage, or a session root.  Per-task queue and execution timings
additionally feed the process-wide
:class:`~repro.obs.registry.MetricsRegistry` histograms
``parallel.task.queue_seconds`` and ``parallel.task.exec_seconds``, and
metric deltas recorded *inside* pool workers (``rb.*`` counters, solver
counters) are shipped back per task and merged into the parent-process
registry — registry totals are worker-count invariant.

Worker count resolution order: explicit ``workers=`` keyword, then the
``REPRO_WORKERS`` environment variable, then serial.  Inside a pool worker
the engine always resolves to serial so nested fan-outs (a tomography
setting running trajectory batches) never oversubscribe.

Minimum-work serial fallback
----------------------------

Process pools only pay off when the work dwarfs the fork/pickle/IPC tax;
the perf baseline showed small fan-outs (tomography settings, trajectory
batches) running *slower* at 4 workers than serially.  A multi-worker
engine therefore **probes**: it runs the first task serially, estimates
the map's total serial cost as ``probe_seconds * len(items)``, and only
spins up the pool when that estimate clears ``min_parallel_seconds``
(default 0.2 s; overridable per engine, via the
``REPRO_MIN_PARALLEL_SECONDS`` environment variable, or disabled entirely
with 0).  The decision is recorded as the ``parallel.mode`` gauge and the
per-map ``parallel.map.mode`` span counter — 0 serial (workers resolved
to 1), 1 serial fallback (pool skipped as not worth it), 2 pool.  Fault
injection always forces the real pool so worker-death tests stay honest.

Task functions must be module-level (picklable) and are called as
``fn(context, item)``; the ``context`` object is shipped to each worker
once via the pool initializer rather than once per task.  Wrapping a
large read-only context in :class:`~repro.parallel.payload.SharedPayload`
shrinks even that one shipment to a key token — fork-started workers
resolve the key against the inherited module-global store
(copy-on-write, zero pickling) and the engine unwraps the payload before
every ``fn`` call, so task functions never see the wrapper.  Savings are
recorded under ``parallel.payload.*``.

Resilience
----------

An engine built with a :class:`~repro.resilience.retry.RetryPolicy`
survives transient task failures and worker deaths: failed tasks are
resubmitted (with deterministic backoff) up to ``max_attempts`` times,
a broken pool is torn down and recreated, and only the tasks that
actually failed re-run — completed results are never recomputed, and the
final result list is placed by item index, so the merge order (and hence
the output) is bitwise-identical to a fault-free run.  Worker-side
exceptions are captured *structurally* (exception object plus formatted
traceback plus task identity) and surface as
:class:`~repro.resilience.errors.TaskFailure` records rather than a bare
re-raise that forgets which task died.  An optional
:class:`~repro.resilience.faults.FaultInjector` deterministically injects
failures for testing; directives are computed in the parent (so they are
counted even when the worker dies) and executed at the task site.
"""

from __future__ import annotations

import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

import os

from repro.obs.events import log_event
from repro.obs.live.heartbeat import (
    heartbeat, heartbeat_step, poll_interval as live_poll_interval,
)
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.parallel.payload import SharedPayload, unwrap_payload
from repro.resilience.errors import RemoteTaskError, TaskFailure, WorkerCrashError
from repro.resilience.faults import FaultDirective, FaultInjector, execute_directive
from repro.resilience.retry import RetryPolicy

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable overriding the serial-fallback threshold.
MIN_PARALLEL_ENV = "REPRO_MIN_PARALLEL_SECONDS"

#: Default estimated-serial-cost threshold (seconds) below which a
#: multi-worker map falls back to serial execution.
DEFAULT_MIN_PARALLEL_SECONDS = 0.2

#: ``parallel.mode`` gauge / ``parallel.map.mode`` counter encoding.
MODE_CODES = {"serial": 0, "serial-fallback": 1, "pool": 2}

#: Worker-process state, installed by the pool initializer.
_WORKER_CONTEXT: Any = None
_IN_WORKER = False


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Precedence: the ``workers`` keyword if given, else the
    ``REPRO_WORKERS`` environment variable, else 1 (serial).  Inside a pool
    worker this always returns 1 so nested parallelism stays serial.
    """
    if _IN_WORKER:
        return 1
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={env!r} is not an integer worker count"
            ) from None
    return max(1, int(workers))


def resolve_min_parallel_seconds(value: Optional[float] = None) -> float:
    """Resolve the serial-fallback threshold (seconds of estimated work).

    Precedence: the explicit ``value`` if given, else the
    ``REPRO_MIN_PARALLEL_SECONDS`` environment variable, else
    :data:`DEFAULT_MIN_PARALLEL_SECONDS`.  ``0`` disables the heuristic
    (every multi-worker map uses the pool unconditionally).
    """
    if value is None:
        env = os.environ.get(MIN_PARALLEL_ENV, "").strip()
        if not env:
            return DEFAULT_MIN_PARALLEL_SECONDS
        try:
            value = float(env)
        except ValueError:
            raise ValueError(
                f"{MIN_PARALLEL_ENV}={env!r} is not a number of seconds"
            ) from None
    return max(0.0, float(value))


def _init_worker(context: Any) -> None:
    global _WORKER_CONTEXT, _IN_WORKER
    _WORKER_CONTEXT = context
    _IN_WORKER = True


def _shippable_error(error: BaseException) -> BaseException:
    """``error`` if it survives a pickle round trip, else a
    :class:`RemoteTaskError` stand-in carrying its ``repr``."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RemoteTaskError(f"{type(error).__name__}: {error}")


def _run_task(fn: Callable[[Any, Any], Any], index: int, item: Any,
              directive: Optional[FaultDirective] = None):
    """Execute one task in a pool worker.

    Returns ``(index, payload, exec_seconds, start_ts, metrics_delta)``:
    ``payload`` is ``("ok", value)`` on success or
    ``("error", exception, traceback_text)`` when the task raised —
    captured structurally so the parent keeps the original exception,
    the worker-side traceback, and the task identity instead of a bare
    re-raise.  ``start_ts`` is the worker's wall clock at task start (the
    parent subtracts its submit timestamp to estimate queue time), and
    ``metrics_delta`` is the task's contribution to the worker-local
    :class:`~repro.obs.registry.MetricsRegistry`, shipped back for the
    parent to merge so process-wide metrics stay worker-count invariant.

    An injected ``worker_death`` directive hard-kills the process here
    (``os._exit``), so the parent sees a genuine ``BrokenProcessPool``.
    """
    registry = get_registry()
    # A DeltaWindow, not a snapshot pair: the shipped histogram deltas
    # then carry the window's exact min/max, so the parent's merge is
    # lossless (see MetricsRegistry.diff).
    window = registry.delta_window()
    try:
        start_ts = time.time()
        started = time.perf_counter()
        try:
            if directive is not None:
                execute_directive(directive, process_exit=_IN_WORKER)
            payload: Tuple[Any, ...] = (
                "ok", fn(unwrap_payload(_WORKER_CONTEXT), item)
            )
        except Exception as error:
            payload = ("error", _shippable_error(error),
                       traceback.format_exc())
        seconds = time.perf_counter() - started
        delta = window.delta()
    finally:
        window.close()
    return index, payload, seconds, start_ts, delta


class ParallelEngine:
    """Maps a task function over independent items, serially or in a pool.

    One engine accumulates ``parallel.*`` counters across every
    :meth:`map` call so a caller can snapshot them into a
    :class:`~repro.obs.trace.Span` (``span.counters.update(
    engine.counters)``).

    ``retry`` (a :class:`~repro.resilience.retry.RetryPolicy`) makes the
    engine resubmit transiently failed tasks and recreate broken pools;
    ``faults`` (a :class:`~repro.resilience.faults.FaultInjector`)
    deterministically injects failures at the site
    ``"{name}.task"``.  Without a retry policy the first failure is
    terminal, matching the historical behavior.
    """

    def __init__(self, workers: Optional[int] = None, name: str = "parallel",
                 retry: Optional[RetryPolicy] = None,
                 faults: Optional[FaultInjector] = None,
                 min_parallel_seconds: Optional[float] = None):
        self.workers = resolve_workers(workers)
        self.name = name
        self.retry = retry
        self.faults = faults
        self.min_parallel_seconds = resolve_min_parallel_seconds(
            min_parallel_seconds
        )
        self.counters: Dict[str, float] = {
            "parallel.workers": float(self.workers),
            "parallel.tasks": 0.0,
            "parallel.serial_seconds_estimate": 0.0,
            "parallel.wall_seconds": 0.0,
        }
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_context: Any = None

    # ------------------------------------------------------------------
    def _ensure_pool(self, context: Any) -> ProcessPoolExecutor:
        """The engine's pool, created lazily and reused across map calls.

        Workers receive ``context`` through the pool initializer, so a map
        with a different context object tears the pool down and forks a
        fresh one; repeated maps with one context (the campaign's two
        stages) pay the startup cost once.
        """
        if self._pool is not None and self._pool_context is not context:
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(context,),
            )
            self._pool_context = context
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; serial engines no-op)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_context = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    @property
    def _site(self) -> str:
        return f"{self.name}.task"

    def _max_attempts(self) -> int:
        return self.retry.max_attempts if self.retry is not None else 1

    def _note_retry(self, index: int, key: Any, attempt: int,
                    error: BaseException) -> None:
        get_registry().inc("resilience.retries")
        log_event(
            "resilience.retry", site=self._site, task_index=index,
            attempt=attempt, key=repr(key), error=repr(error),
        )

    def _terminal_failure(self, index: int, key: Any, attempts: int,
                          error: Optional[BaseException],
                          tb_text: str) -> TaskFailure:
        failure = TaskFailure(self._site, index, key, attempts, error, tb_text)
        get_registry().inc("resilience.task_failures")
        log_event("resilience.task_failure", **failure.to_dict())
        return failure

    @staticmethod
    def _raise_with_identity(failure: TaskFailure) -> None:
        """Propagate the task's original exception, annotated with its
        :class:`TaskFailure` (index, key, attempts, worker traceback)."""
        error = failure.cause if failure.cause is not None else failure
        try:
            error.task_failure = failure
        except Exception:  # pragma: no cover - exotic exception types
            pass
        raise error

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any, Any], Any], items: Iterable[Any],
            context: Any = None, *, keys: Optional[Sequence[Any]] = None,
            on_result: Optional[Callable[[int, Any], None]] = None,
            return_failures: bool = False) -> List[Any]:
        """Run ``fn(context, item)`` for every item, preserving item order.

        ``fn`` must be a module-level function and, when more than one
        worker is in play, ``context``, every item, and every result must
        be picklable.

        ``keys`` gives each task a stable identity (used for fault
        selection, retry jitter, and failure records); it defaults to the
        item index.  ``on_result(index, value)`` is invoked as each task
        *first* completes — in completion order, before the map returns —
        which is how the campaign streams results to a checkpoint.

        Failure semantics: without a retry policy, the first task
        exception propagates (annotated with a ``task_failure`` attribute
        carrying index, key, and the worker-side traceback).  With a
        policy, retryable failures are re-run with deterministic backoff
        and only tasks that exhaust their attempts become terminal.
        Terminal failures propagate the original exception unless
        ``return_failures=True``, in which case the result list holds a
        :class:`~repro.resilience.errors.TaskFailure` in the failed
        task's slot and the caller degrades gracefully.
        """
        work: Sequence[Any] = list(items)
        if keys is not None:
            keys = list(keys)
            if len(keys) != len(work):
                raise ValueError(
                    f"keys has {len(keys)} entries for {len(work)} items"
                )
        registry = get_registry()
        results: List[Any] = [None] * len(work)
        # tasks_done/tasks_submitted reset per map so the board's done/total
        # pair always describes the map in flight, not the site's lifetime.
        heartbeat(self._site, status="mapping", tasks_total=len(work),
                  tasks_done=0, tasks_submitted=0, workers=self.workers)
        with obs_span(f"parallel.map[{self.name}]") as record:
            record.counters["parallel.map.workers"] = float(self.workers)
            record.counters["parallel.map.tasks"] = float(len(work))
            started = time.perf_counter()
            if self.workers == 1 or len(work) <= 1:
                mode = "serial"
                self._map_serial(
                    fn, work, context, keys, on_result, return_failures,
                    record, registry, range(len(work)), results,
                )
            else:
                mode, remaining = self._probe(
                    fn, work, context, keys, on_result, return_failures,
                    record, registry, results,
                )
                if mode == "serial-fallback":
                    self._map_serial(
                        fn, work, context, keys, on_result, return_failures,
                        record, registry, remaining, results,
                    )
                else:
                    try:
                        self._map_pool(
                            fn, work, context, keys, on_result,
                            return_failures, record, registry, remaining,
                            results,
                        )
                    except BaseException:
                        # Cleanup only: the pool cannot outlive a failed
                        # map.  The exception re-raises unmodified (task
                        # failures were already annotated with their
                        # TaskFailure).
                        self.close()
                        raise
            wall = time.perf_counter() - started
            heartbeat(self._site, status="idle")
            self.counters["parallel.tasks"] += float(len(work))
            self.counters["parallel.wall_seconds"] += wall
            record.counters["parallel.map.wall_seconds"] = wall
            record.counters["parallel.map.mode"] = float(MODE_CODES[mode])
            registry.set("parallel.mode", float(MODE_CODES[mode]))
        return results

    def _probe(self, fn, work, context, keys, on_result, return_failures,
               record, registry, results) -> Tuple[str, Sequence[int]]:
        """Decide pool vs serial fallback for a multi-worker map.

        Runs task 0 serially, extrapolates the map's serial cost from its
        wall time, and skips the pool when the estimate stays under
        :attr:`min_parallel_seconds` (see the module docstring).  Returns
        ``(mode, remaining_indexes)``; with the heuristic disabled — or a
        :class:`FaultInjector` present, which needs real workers to kill —
        nothing is probed and every index goes to the pool.
        """
        if self.min_parallel_seconds <= 0.0 or self.faults is not None:
            return "pool", range(len(work))
        t0 = time.perf_counter()
        self._map_serial(
            fn, work, context, keys, on_result, return_failures,
            record, registry, range(1), results,
        )
        probe_seconds = time.perf_counter() - t0
        estimate = probe_seconds * len(work)
        remaining = range(1, len(work))
        if estimate < self.min_parallel_seconds:
            log_event(
                "parallel.serial_fallback", site=self._site,
                tasks=len(work), probe_seconds=probe_seconds,
                estimate_seconds=estimate,
                threshold_seconds=self.min_parallel_seconds,
            )
            return "serial-fallback", remaining
        return "pool", remaining

    # ------------------------------------------------------------------
    def _task_key(self, keys: Optional[Sequence[Any]], index: int) -> Any:
        return keys[index] if keys is not None else index

    def _map_serial(self, fn, work, context, keys, on_result,
                    return_failures, record, registry,
                    indexes: Sequence[int], results: List[Any]) -> None:
        """Run the tasks at ``indexes`` in-process, filling ``results``.

        ``indexes`` are global item indices (the probe hands the pool the
        tail of the list), so keys, ``on_result`` callbacks, and failure
        records keep their full-list identity.
        """
        context = unwrap_payload(context)
        max_attempts = self._max_attempts()
        for i in indexes:
            item = work[i]
            key = self._task_key(keys, i)
            attempts = 0
            while True:
                directive = None
                if self.faults is not None:
                    directive = self.faults.directive(self._site, key, attempts)
                t0 = time.perf_counter()
                try:
                    if directive is not None:
                        self.faults.record(directive)
                        execute_directive(directive, process_exit=False)
                    value = fn(context, item)
                except Exception as error:
                    seconds = time.perf_counter() - t0
                    self.counters["parallel.serial_seconds_estimate"] += seconds
                    record.add("parallel.map.exec_seconds", seconds)
                    registry.observe("parallel.task.exec_seconds", seconds)
                    registry.inc("parallel.tasks")
                    attempts += 1
                    if (self.retry is not None and attempts < max_attempts
                            and self.retry.is_retryable(error)):
                        self._note_retry(i, key, attempts, error)
                        self.retry.sleep(attempts, key)
                        continue
                    failure = self._terminal_failure(
                        i, key, attempts, error, traceback.format_exc(),
                    )
                    heartbeat_step(self._site, "tasks_done")
                    if return_failures:
                        results[i] = failure
                        break
                    error.task_failure = failure
                    raise
                else:
                    seconds = time.perf_counter() - t0
                    self.counters["parallel.serial_seconds_estimate"] += seconds
                    record.add("parallel.map.exec_seconds", seconds)
                    registry.observe("parallel.task.exec_seconds", seconds)
                    registry.inc("parallel.tasks")
                    heartbeat_step(self._site, "tasks_done")
                    results[i] = value
                    if on_result is not None:
                        on_result(i, value)
                    break

    def _await_result(self, future):
        """``future.result()``, but with mid-map liveness heartbeats.

        While a live plane is active the wait polls on the board's
        ``poll_interval`` and beats ``status="waiting"`` on every
        timeout, so a stalled worker is visible in snapshots *before* any
        watchdog fires.  With no active board this is a plain blocking
        ``result()`` — identical to the pre-live behavior.
        """
        while True:
            interval = live_poll_interval()
            if interval is None:
                return future.result()
            try:
                return future.result(timeout=interval)
            except FutureTimeoutError:
                heartbeat(self._site, status="waiting")

    def _map_pool(self, fn, work, context, keys, on_result,
                  return_failures, record, registry,
                  indexes: Sequence[int], results: List[Any]) -> None:
        """Run the tasks at ``indexes`` over the pool, filling ``results``.

        As with :meth:`_map_serial`, ``indexes`` are global item indices.
        """
        failures: Dict[int, TaskFailure] = {}
        attempts: Dict[int, int] = {i: 0 for i in indexes}
        pending = set(indexes)
        max_attempts = self._max_attempts()
        pool_breaks = 0
        while pending:
            pool = self._ensure_pool(context)
            round_indexes = sorted(pending)
            round_directives: Dict[int, Optional[FaultDirective]] = {}
            futures = []
            submitted = []
            for i in round_indexes:
                directive = None
                if self.faults is not None:
                    directive = self.faults.directive(
                        self._site, self._task_key(keys, i), attempts[i],
                    )
                    if directive is not None:
                        self.faults.record(directive)
                round_directives[i] = directive
                submitted.append(time.time())
                futures.append(pool.submit(_run_task, fn, i, work[i], directive))
                heartbeat_step(self._site, "tasks_submitted")
            broken: Optional[BaseException] = None
            round_delay = 0.0
            for future, submit_ts in zip(futures, submitted):
                try:
                    index, payload, seconds, start_ts, delta = \
                        self._await_result(future)
                except BrokenProcessPool as error:
                    broken = error
                    continue
                heartbeat_step(self._site, "tasks_done")
                queue_seconds = max(0.0, start_ts - submit_ts)
                self.counters["parallel.serial_seconds_estimate"] += seconds
                record.add("parallel.map.exec_seconds", seconds)
                record.add("parallel.map.queue_seconds", queue_seconds)
                registry.observe("parallel.task.exec_seconds", seconds)
                registry.observe("parallel.task.queue_seconds", queue_seconds)
                registry.inc("parallel.tasks")
                registry.merge(delta)
                if payload[0] == "ok":
                    results[index] = payload[1]
                    pending.discard(index)
                    if on_result is not None:
                        on_result(index, payload[1])
                    continue
                error, tb_text = payload[1], payload[2]
                key = self._task_key(keys, index)
                attempts[index] += 1
                if (self.retry is not None and attempts[index] < max_attempts
                        and self.retry.is_retryable(error)):
                    self._note_retry(index, key, attempts[index], error)
                    round_delay = max(
                        round_delay, self.retry.delay(attempts[index], key),
                    )
                    continue
                failure = self._terminal_failure(
                    index, key, attempts[index], error, tb_text,
                )
                failures[index] = failure
                pending.discard(index)
            if failures and not return_failures:
                # The whole round was still harvested (so on_result saw
                # every completed task) before the first terminal failure
                # aborts the map.
                self._raise_with_identity(failures[min(failures)])
            if broken is not None:
                pool_breaks += 1
                self.close()
                registry.inc("resilience.pool.recreations")
                log_event(
                    "resilience.pool_broken", site=self._site,
                    breaks=pool_breaks, pending=len(pending),
                )
                if self.retry is None:
                    raise broken
                # Attempts advance only for the tasks whose shipped
                # directive was the worker death; collateral tasks that
                # merely shared the doomed pool replay at the same
                # attempt number, keeping fault selection (and therefore
                # the final report) worker-count invariant.
                death = [i for i in sorted(pending)
                         if round_directives.get(i) is not None
                         and round_directives[i].kind == "worker_death"]
                for i in death:
                    key = self._task_key(keys, i)
                    attempts[i] += 1
                    cause = WorkerCrashError(
                        f"worker died running task {i} (key={key!r})"
                    )
                    if attempts[i] < max_attempts:
                        self._note_retry(i, key, attempts[i], cause)
                        continue
                    failure = self._terminal_failure(
                        i, key, attempts[i], cause, "",
                    )
                    failures[i] = failure
                    pending.discard(i)
                    if not return_failures:
                        self._raise_with_identity(failure)
                if not death and pool_breaks >= max_attempts:
                    # A pool that keeps dying without any injected death
                    # is a genuine environment failure; give up once the
                    # retry budget is spent.
                    raise broken
            if pending and round_delay > 0.0:
                time.sleep(round_delay)
        for index, failure in failures.items():
            results[index] = failure

    # ------------------------------------------------------------------
    def counters_since(self, baseline: Dict[str, float]) -> Dict[str, float]:
        """Counter deltas against a ``dict(engine.counters)`` snapshot.

        ``parallel.workers`` is a level, not an accumulator, so it is
        reported as-is rather than differenced.
        """
        out = {}
        for key, value in self.counters.items():
            if key == "parallel.workers":
                out[key] = value
            else:
                out[key] = value - baseline.get(key, 0.0)
        return out
