"""Parallel execution engine: process-pool fan-out for independent work.

See :mod:`repro.parallel.engine` for the fan-out machinery and
:mod:`repro.parallel.seeding` for the stable, submission-order-independent
RNG derivation that makes parallel results reproducible.
"""

from repro.parallel.engine import (
    MIN_PARALLEL_ENV,
    MODE_CODES,
    ParallelEngine,
    WORKERS_ENV,
    resolve_min_parallel_seconds,
    resolve_workers,
)
from repro.parallel.payload import (
    SharedPayload,
    fork_inherits_globals,
    unwrap_payload,
)
from repro.parallel.race import (
    RaceOutcome,
    RaceResult,
    race_to_first_good,
)
from repro.parallel.seeding import (
    stable_entropy,
    stable_rng,
    stable_seed_sequence,
)

__all__ = [
    "MIN_PARALLEL_ENV",
    "MODE_CODES",
    "ParallelEngine",
    "RaceOutcome",
    "RaceResult",
    "SharedPayload",
    "WORKERS_ENV",
    "fork_inherits_globals",
    "race_to_first_good",
    "resolve_min_parallel_seconds",
    "resolve_workers",
    "stable_entropy",
    "stable_rng",
    "stable_seed_sequence",
    "unwrap_payload",
]
