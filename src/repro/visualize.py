"""Dependency-free SVG rendering of device maps and schedules.

Two renderers, both emitting standalone SVG text (no matplotlib):

* :func:`device_map_svg` — the coupling graph with high-crosstalk pairs
  drawn as red dashed arcs between edge midpoints: Figure 3 as an actual
  figure;
* :func:`schedule_svg` — a Gantt chart of a timed schedule: Figure 6 as an
  actual figure (one lane per qubit, two-qubit gates spanning both lanes).

The benchmark harness archives these next to the text tables.
"""

from __future__ import annotations

import html
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.device.device import Device
from repro.device.topology import Edge
from repro.transpiler.schedule import Schedule

_GRID_COLS = 5


def _qubit_position(qubit: int, spacing: float = 90.0,
                    margin: float = 50.0) -> Tuple[float, float]:
    row, col = divmod(qubit, _GRID_COLS)
    return margin + col * spacing, margin + row * spacing


def device_map_svg(device: Device,
                   high_pairs: Optional[Iterable[FrozenSet[Edge]]] = None,
                   title: Optional[str] = None) -> str:
    """Render a 20-qubit grid device with crosstalk pairs highlighted.

    ``high_pairs`` defaults to the device's planted ground truth; pass a
    report's ``high_pairs()`` to draw what characterization measured.
    """
    pairs = list(high_pairs) if high_pairs is not None else \
        list(device.true_high_pairs())
    title = title or device.name
    width = 2 * 50 + (_GRID_COLS - 1) * 90
    rows = (device.num_qubits + _GRID_COLS - 1) // _GRID_COLS
    height = 2 * 50 + (rows - 1) * 90 + 30

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{html.escape(title)}</text>',
    ]

    # coupling edges
    for a, b in device.coupling.edges:
        xa, ya = _qubit_position(a)
        xb, yb = _qubit_position(b)
        parts.append(
            f'<line x1="{xa}" y1="{ya}" x2="{xb}" y2="{yb}" '
            f'stroke="#888" stroke-width="2"/>'
        )

    # crosstalk arcs between edge midpoints
    for pair in pairs:
        (a1, b1), (a2, b2) = sorted(pair)
        x1 = sum(_qubit_position(q)[0] for q in (a1, b1)) / 2
        y1 = sum(_qubit_position(q)[1] for q in (a1, b1)) / 2
        x2 = sum(_qubit_position(q)[0] for q in (a2, b2)) / 2
        y2 = sum(_qubit_position(q)[1] for q in (a2, b2)) / 2
        cx, cy = (x1 + x2) / 2 + 14, (y1 + y2) / 2 - 14
        parts.append(
            f'<path d="M {x1} {y1} Q {cx} {cy} {x2} {y2}" fill="none" '
            f'stroke="#c0392b" stroke-width="2.5" stroke-dasharray="6,4"/>'
        )

    # qubit nodes
    for q in range(device.num_qubits):
        x, y = _qubit_position(q)
        parts.append(
            f'<circle cx="{x}" cy="{y}" r="14" fill="#f4f4f4" '
            f'stroke="#333" stroke-width="1.5"/>'
        )
        parts.append(
            f'<text x="{x}" y="{y + 4}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="11">{q}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


_SERIES_COLORS = ("#2e6fb7", "#c0392b", "#7fb77e", "#b08948",
                  "#8e44ad", "#16a085", "#d35400", "#2c3e50")


def line_chart_svg(series: Dict[str, Sequence[Tuple[float, float]]],
                   title: str = "", x_label: str = "", y_label: str = "",
                   width: float = 640.0, height: float = 400.0) -> str:
    """A multi-series line chart (Figure 4 / Figure 8 style).

    ``series`` maps a legend label to its (x, y) points.  Axes are linear
    with padded auto-ranges; the legend renders in the top-right corner.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("no data")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    pad = (y_hi - y_lo) * 0.1 or max(abs(y_hi), 1e-6) * 0.1
    y_lo, y_hi = y_lo - pad, y_hi + pad

    left, right, top, bottom = 60.0, 16.0, 34.0, 44.0
    plot_w = width - left - right
    plot_h = height - top - bottom

    def px(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return top + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<text x="{width / 2:.0f}" y="18" text-anchor="middle" '
        f'font-family="sans-serif" font-size="13">{html.escape(title)}</text>',
        f'<rect x="{left}" y="{top}" width="{plot_w:.1f}" '
        f'height="{plot_h:.1f}" fill="none" stroke="#999"/>',
    ]
    # axis ticks (5 per axis)
    for i in range(5):
        xv = x_lo + (x_hi - x_lo) * i / 4
        yv = y_lo + (y_hi - y_lo) * i / 4
        parts.append(
            f'<text x="{px(xv):.1f}" y="{height - 26:.0f}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="10">{xv:.2g}</text>'
        )
        parts.append(
            f'<text x="{left - 6:.0f}" y="{py(yv) + 3:.1f}" '
            f'text-anchor="end" font-family="sans-serif" '
            f'font-size="10">{yv:.3g}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{left + plot_w / 2:.0f}" y="{height - 8:.0f}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="11">{html.escape(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{top + plot_h / 2:.0f}" text-anchor="middle" '
            f'transform="rotate(-90 14 {top + plot_h / 2:.0f})" '
            f'font-family="sans-serif" font-size="11">'
            f'{html.escape(y_label)}</text>'
        )
    for idx, (label, pts) in enumerate(series.items()):
        color = _SERIES_COLORS[idx % len(_SERIES_COLORS)]
        path = " ".join(
            f"{'M' if i == 0 else 'L'} {px(x):.1f} {py(y):.1f}"
            for i, (x, y) in enumerate(sorted(pts))
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        ly = top + 14 + idx * 15
        parts.append(
            f'<rect x="{width - right - 160:.0f}" y="{ly - 9:.0f}" '
            f'width="10" height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{width - right - 146:.0f}" y="{ly:.0f}" '
            f'font-family="sans-serif" font-size="10">'
            f'{html.escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


_LANE_HEIGHT = 26.0
_LEFT_GUTTER = 52.0

_COLORS = {
    "two_qubit": "#2e6fb7",
    "single_qubit": "#7fb77e",
    "measure": "#b08948",
}


def schedule_svg(schedule: Schedule,
                 qubits: Optional[Sequence[int]] = None,
                 width: float = 760.0,
                 title: Optional[str] = None) -> str:
    """Render a timed schedule as an SVG Gantt chart."""
    show = sorted(qubits) if qubits is not None else sorted(
        schedule.circuit.active_qubits()
    )
    span = max(schedule.makespan(), 1e-9)
    scale = (width - _LEFT_GUTTER - 12) / span
    lane_of = {q: i for i, q in enumerate(show)}
    height = 40 + len(show) * _LANE_HEIGHT + 20
    title = title or schedule.circuit.name

    def x_of(t: float) -> float:
        return _LEFT_GUTTER + t * scale

    def y_of(q: int) -> float:
        return 36 + lane_of[q] * _LANE_HEIGHT

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<text x="{width / 2:.0f}" y="16" text-anchor="middle" '
        f'font-family="sans-serif" font-size="13">{html.escape(title)} '
        f'({span:.0f} ns)</text>',
    ]
    for q in show:
        y = y_of(q)
        parts.append(
            f'<text x="8" y="{y + 15:.1f}" font-family="monospace" '
            f'font-size="11">q{q}</text>'
        )
        parts.append(
            f'<line x1="{_LEFT_GUTTER}" y1="{y + _LANE_HEIGHT - 4:.1f}" '
            f'x2="{width - 10:.0f}" y2="{y + _LANE_HEIGHT - 4:.1f}" '
            f'stroke="#eee"/>'
        )

    for op in sorted(schedule, key=lambda t: t.start):
        instr = op.instruction
        if instr.is_barrier or not all(q in lane_of for q in instr.qubits):
            continue
        if instr.is_measure:
            color = _COLORS["measure"]
        elif instr.is_two_qubit:
            color = _COLORS["two_qubit"]
        else:
            color = _COLORS["single_qubit"]
        x = x_of(op.start)
        w = max(op.duration * scale, 2.0)
        lanes = [y_of(q) for q in instr.qubits]
        if instr.is_two_qubit:
            top, bottom = min(lanes), max(lanes)
            parts.append(
                f'<rect x="{x:.1f}" y="{top + 2:.1f}" width="{w:.1f}" '
                f'height="{bottom - top + _LANE_HEIGHT - 8:.1f}" '
                f'fill="{color}" fill-opacity="0.75" rx="3"/>'
            )
        else:
            y = lanes[0]
            parts.append(
                f'<rect x="{x:.1f}" y="{y + 2:.1f}" width="{w:.1f}" '
                f'height="{_LANE_HEIGHT - 8:.1f}" fill="{color}" '
                f'fill-opacity="0.85" rx="3"/>'
            )
        label = instr.name
        parts.append(
            f'<text x="{x + 2:.1f}" y="{min(lanes) + 15:.1f}" '
            f'font-family="monospace" font-size="9" fill="#fff">'
            f'{html.escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
