"""The solver's single owned time budget.

Historically two seams could arm a solve deadline: ``OptimizingSolver``'s
legacy ``time_limit`` and the scheduler's ``max_solve_seconds``.  Each kept
its own ``_deadline`` float, so a nested solve (the exact search seeding
itself with a greedy incumbent, or a portfolio racing several backends)
could re-arm an already-running clock and silently extend the budget.

:class:`Budget` owns the clock instead.  One instance is created per
logical solve (the scheduler creates it; standalone solver use creates it
from ``time_limit``), every layer shares that instance, and :meth:`arm`
is first-caller-wins: arming an armed budget is a no-op, so nested layers
can never extend it.  An unlimited budget (``seconds=None``) never arms
and never expires.

Deadlines are ``time.monotonic``-based.  On Linux ``CLOCK_MONOTONIC`` is
system-wide, so a pickled armed budget keeps meaning the same instant
inside pool workers — the portfolio race relies on this to give every
raced backend the *same* clock rather than a fresh one per process.
"""

from __future__ import annotations

import time
from typing import Optional


class Budget:
    """A solve-time budget with first-caller-wins arming.

    ``Budget(None)`` is unlimited: :meth:`arm` returns False and
    :meth:`expired` is always False, so budget checks cost one attribute
    read on the unlimited path.
    """

    __slots__ = ("seconds", "_deadline")

    def __init__(self, seconds: Optional[float] = None):
        if seconds is not None and seconds < 0.0:
            raise ValueError("budget seconds must be >= 0")
        self.seconds = seconds
        self._deadline: Optional[float] = None

    def __repr__(self) -> str:
        state = "unlimited" if self.seconds is None else (
            "armed" if self._deadline is not None else "unarmed"
        )
        return f"Budget(seconds={self.seconds}, {state})"

    # ------------------------------------------------------------------
    @property
    def limited(self) -> bool:
        return self.seconds is not None

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    def arm(self) -> bool:
        """Start the clock if limited and not already running.

        Returns True when *this call* armed it — the caller then owns
        :meth:`disarm`.  Nested callers get False and must leave the
        clock alone, which is exactly what makes double-arming harmless.
        """
        if self.seconds is not None and self._deadline is None:
            self._deadline = time.monotonic() + self.seconds
            return True
        return False

    def disarm(self) -> None:
        """Stop the clock (the owner's cleanup; idempotent)."""
        self._deadline = None

    def expired(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds left on an armed clock; None when unlimited/unarmed."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self.seconds, self._deadline)

    def __setstate__(self, state):
        self.seconds, self._deadline = state
