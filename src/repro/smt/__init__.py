"""A small optimizing solver for scheduling-shaped SMT problems.

The paper formulates gate scheduling as an SMT optimization and solves it
with Z3 (Section 7).  Z3 is unavailable offline, so this package implements
an exact solver for precisely the fragment the formulation uses:

* real **variables** (gate start times) constrained by **difference
  constraints** ``x - y >= c`` (data dependencies, serialization orders,
  containment, readout simultaneity);
* categorical **decisions** whose options activate different constraint
  sets (the overlap-indicator structure of constraints (2)–(8) and the
  IBMQ full-containment disjunction (11)–(13));
* an objective that splits into a decision-dependent constant part (the
  ``ω Σ log g.ε`` gate-error terms, supplied as a monotone partial-cost
  callback) plus a linear function of the reals (the decoherence lifetime
  terms), minimized by LP once decisions are fixed.

:class:`~repro.smt.solver.OptimizingSolver` performs DPLL-style
branch-and-bound over the decisions with a Bellman–Ford theory check and
LP-based bounding — exact on paper-scale instances — and a greedy dive
mode for the large supremacy-circuit scalability study.
"""

from repro.smt.model import (
    DiffConstraint,
    Option,
    Decision,
    ScheduleModel,
)
from repro.smt.feasibility import difference_feasible
from repro.smt.budget import Budget
from repro.smt.backends import (
    ExactBnB,
    GreedyDive,
    LocalSearch,
    SolveRequest,
    SolveResult,
    SolverBackend,
)
from repro.smt.solver import OptimizingSolver, Solution
from repro.smt.windows import WindowedSolver, WindowPlan, plan_windows
from repro.smt.portfolio import PortfolioSolver
from repro.smt.smtlib import model_to_smtlib, assignment_to_smtlib_asserts

__all__ = [
    "DiffConstraint",
    "Option",
    "Decision",
    "ScheduleModel",
    "difference_feasible",
    "Budget",
    "SolverBackend",
    "SolveRequest",
    "SolveResult",
    "ExactBnB",
    "GreedyDive",
    "LocalSearch",
    "WindowedSolver",
    "WindowPlan",
    "plan_windows",
    "PortfolioSolver",
    "OptimizingSolver",
    "Solution",
    "model_to_smtlib",
    "assignment_to_smtlib_asserts",
]
