"""Feasibility of difference-constraint systems via Bellman–Ford.

A system of constraints ``x - y >= c`` is feasible iff the standard
constraint graph has no negative cycle.  Using the shortest-path potential
also yields a concrete satisfying assignment (the ASAP solution), which the
solver uses as a warm start and as a fallback when SciPy's LP is
unnecessary (all-objective-zero subproblems).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.smt.model import DiffConstraint


def difference_feasible(num_vars: int,
                        constraints: Iterable[DiffConstraint]) -> Optional[List[float]]:
    """Return a satisfying assignment with all vars >= 0, or None.

    The returned assignment is the component-wise *smallest* non-negative
    solution (every variable as early as possible) — the ASAP schedule of
    the partial ordering.
    """
    # Convert x - y >= c into edge y -> x with weight c and compute longest
    # paths from a virtual source (x >= 0 for all x).  Feasible iff no
    # positive cycle; the longest-path distances are the minimal solution.
    edges: List[Tuple[int, int, float]] = []  # (src, dst, weight)
    for c in constraints:
        if c.var_lo is None:
            # x >= offset: edge from source handled via initial distance.
            edges.append((-1, c.var_hi, c.offset))
        else:
            edges.append((c.var_lo, c.var_hi, c.offset))

    dist = [0.0] * num_vars  # source gives every var >= 0
    for src, dst, w in edges:
        if src == -1 and w > dist[dst]:
            dist[dst] = w

    # Bellman-Ford longest path relaxation.
    real_edges = [(s, d, w) for s, d, w in edges if s != -1]
    for iteration in range(num_vars):
        changed = False
        for src, dst, w in real_edges:
            cand = dist[src] + w
            if cand > dist[dst] + 1e-9:
                dist[dst] = cand
                changed = True
        if not changed:
            return dist
    # One extra pass: any further relaxation means a positive cycle.
    for src, dst, w in real_edges:
        if dist[src] + w > dist[dst] + 1e-9:
            return None
    return dist
