"""Windowed decomposition: solve big models as a chain of small ones.

The monolithic model is exact but combinatorial: at device scale (65q/127q
heavy-hex) a supremacy layer yields hundreds of decisions and the B&B tree
is unreachable.  The key structural fact that makes decomposition cheap is
that :class:`~repro.core.scheduling.xtalk.XtalkScheduler` appends decisions
in ascending gate-index (time) order, so a *window* is simply a contiguous
range of the decision list:

* ``model.constraints_for(prefix)`` already includes every constraint
  activated by earlier windows' choices, so boundary serializations are
  carried forward automatically — stitching is just "fix the prefix";
* ``partial_cost(prefix)`` stays monotone and admissible within a window,
  so each window solve is exact *given* the frozen prefix.

Blockwise-exact search interpolates between the existing modes: window
size 1 is the greedy dive, one window covering everything is the exact
solver.  The solution is globally exact only in the single-window case;
otherwise ``exact=False`` with no interrupt means "every window solved to
optimality under its frozen prefix".

:func:`plan_windows` sizes windows by a decision-count cap and prefers
region-aware cuts: a cut point where adjacent decisions share no schedule
variables decouples the windows entirely, so within a small ``slack`` the
planner slides each cut left to such a boundary when one exists.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.obs.events import log_event
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.smt.backends import (
    ExactBnB,
    Solution,
    SolveRequest,
    SolverBackend,
    evaluate,
)
from repro.smt.model import Decision, ScheduleModel


def _decision_vars(decision: Decision) -> FrozenSet[int]:
    """Every schedule variable any option of ``decision`` touches."""
    touched = set()
    for option in decision.options:
        for con in option.constraints:
            touched.add(con.var_hi)
            if con.var_lo is not None:
                touched.add(con.var_lo)
    return frozenset(touched)


@dataclass(frozen=True)
class WindowPlan:
    """A partition of the decision list into contiguous windows."""

    #: Half-open ``(start, stop)`` decision-index ranges, in order.
    windows: Tuple[Tuple[int, int], ...]
    cap: int
    num_decisions: int

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def max_window(self) -> int:
        return max((stop - start for start, stop in self.windows), default=0)


def plan_windows(model: ScheduleModel, cap: int, *,
                 slack: Optional[int] = None) -> WindowPlan:
    """Partition ``model.decisions`` into windows of at most ``cap``.

    Cuts are slid left by up to ``slack`` positions (default
    ``max(1, cap // 4)``)
    to land on a variable-disjoint boundary — a point where the decisions
    on either side touch no common schedule variable — when one exists;
    such cuts decouple the windows so freezing the earlier one costs
    nothing.  Deterministic: same model and cap, same plan.
    """
    if cap < 1:
        raise ValueError("window cap must be >= 1")
    n = len(model.decisions)
    if slack is None:
        slack = max(1, cap // 4)
    variables = [_decision_vars(d) for d in model.decisions]
    windows: List[Tuple[int, int]] = []
    start = 0
    while start < n:
        stop = min(start + cap, n)
        if stop < n:
            # Prefer a disjoint boundary within [stop - slack, stop].
            for candidate in range(stop, max(start, stop - slack - 1), -1):
                if not (variables[candidate - 1] & variables[candidate]):
                    stop = candidate
                    break
        windows.append((start, stop))
        start = stop
    return WindowPlan(windows=tuple(windows), cap=cap, num_decisions=n)


class _WindowView:
    """A :class:`ScheduleModel`-shaped view of one window.

    Exposes ``model.decisions[start:stop]`` as the full decision list while
    delegating ``constraints_for`` with the frozen ``prefix`` prepended, so
    any backend can solve the window unmodified.  Module-level (and holding
    only the model + plain data) so windowed requests pickle for the
    portfolio race.
    """

    def __init__(self, model: ScheduleModel, prefix: Sequence[int],
                 start: int, stop: int):
        self._model = model
        self._prefix = list(prefix)
        self.decisions = model.decisions[start:stop]
        self.num_vars = model.num_vars
        self.objective = model.objective
        self.objective_offset = model.objective_offset
        self.base_constraints = model.constraints_for(self._prefix)

    def constraints_for(self, assignment: Sequence[int]):
        return self._model.constraints_for(self._prefix + list(assignment))


class _WindowCost:
    """``partial_cost`` with the frozen prefix prepended (picklable)."""

    def __init__(self, partial_cost, prefix: Sequence[int]):
        self._cost = partial_cost
        self._prefix = tuple(prefix)

    def __call__(self, assignment: Tuple[int, ...]) -> float:
        return self._cost(self._prefix + tuple(assignment))


class WindowedSolver(SolverBackend):
    """Blockwise-exact solve over a :func:`plan_windows` partition.

    Each window is solved by ``inner`` (default
    :class:`~repro.smt.backends.ExactBnB`) with every earlier window's
    assignment frozen as a prefix; the shared budget is armed once here so
    inner solves can never extend it.  Emits an ``smt.windows`` span with
    ``smt.window.*`` counters and one ``smt.window.plan`` event.
    """

    name = "windowed"

    def __init__(self, cap: Optional[int] = None,
                 inner: Optional[SolverBackend] = None):
        if cap is not None and cap < 1:
            raise ValueError("window cap must be >= 1")
        self.cap = cap
        self.inner = inner if inner is not None else ExactBnB()

    def __repr__(self) -> str:
        return f"WindowedSolver(cap={self.cap}, inner={self.inner!r})"

    def solve(self, request: SolveRequest) -> Solution:
        model = request.model
        budget = request.budget
        cap = self.cap if self.cap is not None else max(
            1, request.exact_decision_limit)
        plan = plan_windows(model, cap)
        armed = budget.arm()
        started = time.perf_counter()
        assignment: List[int] = []
        nodes = 0
        interrupt: Optional[str] = None
        try:
            with obs_span("smt.windows") as record:
                hint = request.hint
                for start, stop in plan.windows:
                    view = _WindowView(model, assignment, start, stop)
                    sub = SolveRequest(
                        model=view,
                        partial_cost=_WindowCost(
                            request.partial_cost, assignment),
                        budget=budget,
                        exact_decision_limit=request.exact_decision_limit,
                        max_nodes=request.max_nodes,
                        hint=hint,
                    )
                    result = self.inner.solve(sub)
                    assignment.extend(result.assignment)
                    nodes += result.nodes_explored
                    if result.interrupt is not None:
                        interrupt = result.interrupt
                record.counters.update({
                    "smt.window.count": float(len(plan)),
                    "smt.window.cap": float(cap),
                    "smt.window.max_decisions": float(plan.max_window),
                    "smt.window.nodes": float(nodes),
                    "smt.window.seconds": time.perf_counter() - started,
                })
            registry = get_registry()
            registry.inc("smt.windowed_solves")
            registry.inc("smt.windows_solved", len(plan))
            log_event(
                "smt.window.plan",
                windows=len(plan),
                cap=cap,
                decisions=plan.num_decisions,
                max_window=plan.max_window,
                interrupt=interrupt,
            )
        finally:
            if armed:
                budget.disarm()
        solution = evaluate(
            request, assignment,
            exact=len(plan) <= 1 and interrupt is None,
            interrupt=interrupt,
            nodes=nodes,
        )
        if solution is None:  # pragma: no cover - windows are feasible
            raise RuntimeError("windowed solve produced infeasible assignment")
        return solution
