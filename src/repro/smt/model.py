"""Model objects for the scheduling solver.

A :class:`ScheduleModel` owns a set of real variables (indexed 0..n-1),
base difference constraints that always hold, a list of categorical
decisions, and a linear objective over the reals.  The decision-dependent
constant part of the objective is supplied to the solver as a callback
(see :mod:`repro.smt.solver`), keeping this package independent of
quantum-specific error semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DiffConstraint:
    """``var_hi - var_lo >= offset`` (with ``var_lo=None``: ``var_hi >= offset``).

    Difference constraints are exactly what gate scheduling needs: data
    dependencies (eq. 1), serialization orders, containment overlap
    (eqs. 11–13 after choosing a disjunct), and equalities (two opposed
    constraints).
    """

    var_hi: int
    var_lo: Optional[int]
    offset: float

    def __post_init__(self) -> None:
        if self.var_lo is not None and self.var_hi == self.var_lo:
            raise ValueError("constraint relates a variable to itself")

    @staticmethod
    def after(later: int, earlier: int, gap: float) -> "DiffConstraint":
        """``later`` starts at least ``gap`` after ``earlier`` starts."""
        return DiffConstraint(later, earlier, gap)

    @staticmethod
    def at_least(var: int, value: float) -> "DiffConstraint":
        return DiffConstraint(var, None, value)

    @staticmethod
    def equal(a: int, b: int) -> Tuple["DiffConstraint", "DiffConstraint"]:
        return (DiffConstraint(a, b, 0.0), DiffConstraint(b, a, 0.0))


@dataclass(frozen=True)
class Option:
    """One branch of a decision: a label plus the constraints it activates."""

    label: str
    constraints: Tuple[DiffConstraint, ...] = ()


@dataclass(frozen=True)
class Decision:
    """A categorical decision between mutually exclusive options.

    For the scheduler, each high-crosstalk candidate pair ``(gi, gj)``
    yields one decision with three options: serialize ``gi`` first,
    serialize ``gj`` first, or overlap with full containment.
    """

    name: str
    options: Tuple[Option, ...]
    #: Arbitrary payload for the cost callback (e.g. the gate index pair).
    payload: object = None

    def __post_init__(self) -> None:
        if len(self.options) < 1:
            raise ValueError(f"decision {self.name!r} needs at least one option")


class ScheduleModel:
    """A complete solver input."""

    def __init__(self, num_vars: int):
        if num_vars <= 0:
            raise ValueError("model needs at least one variable")
        self.num_vars = num_vars
        self.base_constraints: List[DiffConstraint] = []
        self.decisions: List[Decision] = []
        #: Linear objective coefficients over the real variables (minimized).
        self.objective: Dict[int, float] = {}
        #: Constant objective offset (e.g. gate-duration parts of lifetimes).
        self.objective_offset: float = 0.0

    # ------------------------------------------------------------------
    def _check_var(self, var: Optional[int]) -> None:
        if var is not None and not 0 <= var < self.num_vars:
            raise ValueError(f"variable {var} out of range")

    def add_constraint(self, constraint: DiffConstraint) -> None:
        self._check_var(constraint.var_hi)
        self._check_var(constraint.var_lo)
        self.base_constraints.append(constraint)

    def add_decision(self, decision: Decision) -> None:
        for option in decision.options:
            for c in option.constraints:
                self._check_var(c.var_hi)
                self._check_var(c.var_lo)
        self.decisions.append(decision)

    def add_objective_term(self, var: int, coefficient: float) -> None:
        self._check_var(var)
        self.objective[var] = self.objective.get(var, 0.0) + coefficient

    # ------------------------------------------------------------------
    def constraints_for(self, assignment: Sequence[int]) -> List[DiffConstraint]:
        """Base constraints plus those of the assigned decision options.

        ``assignment[k]`` is the option index chosen for decision ``k``;
        entries beyond ``len(assignment)`` are undecided.
        """
        out = list(self.base_constraints)
        for decision, choice in zip(self.decisions, assignment):
            out.extend(decision.options[choice].constraints)
        return out
