"""Portfolio solving: race several backends, keep the best schedule.

No single strategy dominates at every scale — exact B&B wins small
models, windowed decomposition wins device-scale ones, local search wins
when a warm start from the previous calibration epoch is nearly right.
:class:`PortfolioSolver` runs a portfolio of backends over one shared
:class:`~repro.smt.backends.SolveRequest` (one model, one budget, one
warm-start hint) through :func:`repro.parallel.race.race_to_first_good`
and returns the winner's solution.

Entrant keys encode the preference order — ``00-exact`` beats
``10-windowed`` beats warm local search beats cold — so when several
entrants finish cleanly the most trustworthy one wins, deterministically
and independent of worker count.  "Good" means the entrant finished
without an interrupt (no deadline, no node-cap truncation); when nothing
is good (tiny budgets), the lowest objective wins, so the portfolio
degrades exactly like its best member.

The shared budget is armed here, before any entrant runs: in-process
entrants then see first-caller-wins no-ops, and pool workers receive the
armed deadline through pickling (monotonic clocks are system-wide on
Linux), so racing N backends never multiplies the time budget by N.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.obs.events import log_event
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.parallel.race import RaceResult, race_to_first_good
from repro.smt.backends import (
    ExactBnB,
    GreedyDive,
    LocalSearch,
    Solution,
    SolveRequest,
    SolveResult,
    SolverBackend,
)
from repro.smt.windows import WindowedSolver

#: An entrant is ``(backend, use_hint)``; stripping the hint gives the
#: cold-start variant of a warm-startable backend.
Entrant = Tuple[SolverBackend, bool]


def solve_entrant(request: SolveRequest, payload: Entrant) -> SolveResult:
    """Module-level race runner (picklable for the pool path)."""
    backend, use_hint = payload
    if not use_hint and request.hint is not None:
        request = replace(request, hint=None)
    return backend.run(request)


def _result_good(result: SolveResult) -> bool:
    return result.solution.interrupt is None


def _result_score(result: SolveResult) -> float:
    return result.solution.objective


class PortfolioSolver(SolverBackend):
    """Race a portfolio of backends; the canonical-key winner's solution.

    ``entrants`` overrides the default portfolio (keyed ``(key, backend,
    use_hint)`` triples).  The default portfolio adapts to the request:
    exact B&B joins only when the model is within
    ``exact_decision_limit``; a warm-started local search joins only when
    the request carries a hint.  ``workers`` caps the race's parallelism
    (default: ``REPRO_WORKERS`` resolution).

    After :meth:`solve`, :attr:`last_race` holds the full
    :class:`~repro.parallel.race.RaceResult` for audit trails.
    """

    name = "portfolio"

    def __init__(self,
                 entrants: Optional[Sequence[Tuple[str, SolverBackend, bool]]]
                 = None,
                 workers: Optional[int] = None,
                 window_cap: Optional[int] = None):
        self.entrants = list(entrants) if entrants is not None else None
        self.workers = workers
        self.window_cap = window_cap
        self.last_race: Optional[RaceResult] = None

    def __repr__(self) -> str:
        custom = len(self.entrants) if self.entrants is not None else "default"
        return f"PortfolioSolver(entrants={custom}, workers={self.workers})"

    # ------------------------------------------------------------------
    def _default_entrants(self, request: SolveRequest
                          ) -> List[Tuple[str, SolverBackend, bool]]:
        """The adaptive default portfolio, in preference-key order."""
        entrants: List[Tuple[str, SolverBackend, bool]] = []
        if len(request.model.decisions) <= request.exact_decision_limit:
            entrants.append(("00-exact", ExactBnB(), False))
        entrants.append((
            "10-windowed",
            WindowedSolver(cap=self.window_cap),
            False,
        ))
        if request.hint:
            entrants.append(("20-local-warm", LocalSearch(), True))
        entrants.append(("30-local", LocalSearch(), False))
        entrants.append(("40-greedy", GreedyDive(), False))
        return entrants

    # ------------------------------------------------------------------
    def solve(self, request: SolveRequest) -> Solution:
        triples = (self.entrants if self.entrants is not None
                   else self._default_entrants(request))
        budget = request.budget
        armed = budget.arm()
        started = time.perf_counter()
        try:
            with obs_span("smt.portfolio") as record:
                race = race_to_first_good(
                    [(key, (backend, use_hint))
                     for key, backend, use_hint in triples],
                    solve_entrant,
                    request,
                    is_good=_result_good,
                    score=_result_score,
                    workers=self.workers,
                    name="portfolio",
                )
                seconds = time.perf_counter() - started
                record.counters.update({
                    "smt.portfolio.entrants": float(len(triples)),
                    "smt.portfolio.good": float(
                        sum(1 for o in race.outcomes if o.good)),
                    "smt.portfolio.seconds": seconds,
                })
        finally:
            if armed:
                budget.disarm()
        self.last_race = race
        registry = get_registry()
        registry.inc("smt.portfolio.races")
        log_event(
            "smt.portfolio.race",
            winner=race.winner_key,
            backend=race.winner.backend,
            mode=race.mode,
            entrants=len(triples),
            good=sum(1 for o in race.outcomes if o.good),
            seconds=race.seconds,
            objective=race.winner.solution.objective,
        )
        return race.winner.solution
