"""Interchangeable solver backends behind one request/result contract.

:class:`~repro.smt.solver.OptimizingSolver` historically owned two search
strategies as private methods (exact branch-and-bound and a greedy fast
dive).  Device-scale scheduling needs more — windowed decomposition, local
search, warm-started variants, and portfolio races over all of them — so
the strategies live here as :class:`SolverBackend` implementations sharing
a :class:`SolveRequest`/:class:`Solution` contract that carries the model,
the monotone partial-cost callback, the (single, shared)
:class:`~repro.smt.budget.Budget`, an optional incumbent to beat, and an
optional warm-start hint.

Backends are small, configuration-only objects: they hold no model state,
so they pickle cleanly and can be shipped to pool workers by the portfolio
race (:func:`repro.parallel.race.race_to_first_good`).  All of them are
deterministic — same request, same answer, on any worker.

* :class:`ExactBnB` — depth-first branch-and-bound with LP bounding,
  seeded by a greedy incumbent (or ``request.incumbent``); exact within
  ``max_nodes`` / budget.
* :class:`GreedyDive` — one pass of best-bound decisions, no
  backtracking; the historical large-instance mode.
* :class:`LocalSearch` — starts from the warm-start hint (or a greedy
  dive) and hill-climbs single-decision flips until a fixpoint, the
  budget expires, or ``max_rounds`` passes run dry.

The windowed-decomposition backend lives in :mod:`repro.smt.windows`
(it layers on top of the primitives here).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.smt.budget import Budget
from repro.smt.feasibility import difference_feasible
from repro.smt.model import Decision, DiffConstraint, ScheduleModel

PartialCost = Callable[[Tuple[int, ...]], float]


def zero_cost(assignment: Tuple[int, ...]) -> float:
    """The default (constant-free) partial cost; module-level so requests
    built without a callback still pickle."""
    return 0.0


@dataclass
class Solution:
    """Solver output.

    ``interrupt`` records why the search was cut short, if it was:
    ``"deadline"`` (the budget expired) or ``"nodes"`` (the ``max_nodes``
    cap).  An interrupted solution is still *valid* — it satisfies every
    constraint — just not proven optimal; callers like
    :class:`~repro.core.scheduling.xtalk.XtalkScheduler` use the field to
    decide whether to keep the incumbent or fall back entirely.
    """

    assignment: Tuple[int, ...]
    times: Tuple[float, ...]
    objective: float
    constant_part: float
    linear_part: float
    nodes_explored: int
    exact: bool
    interrupt: Optional[str] = None

    def option_labels(self, model: ScheduleModel) -> Tuple[str, ...]:
        return tuple(
            decision.options[choice].label
            for decision, choice in zip(model.decisions, self.assignment)
        )


@dataclass
class SolveRequest:
    """Everything a backend needs to produce a :class:`Solution`.

    One request is built per logical solve and shared by every backend
    that works on it (the exact search's internal greedy incumbent, every
    portfolio entrant, every decomposition window), so the ``budget``
    clock is armed exactly once no matter how many layers run.
    """

    model: ScheduleModel
    partial_cost: PartialCost = zero_cost
    budget: Budget = field(default_factory=Budget)
    exact_decision_limit: int = 14
    max_nodes: int = 200_000
    #: A known-good solution to beat (seeds B&B pruning).
    incumbent: Optional[Solution] = None
    #: Warm-start hint: decision name -> option label (e.g. from the
    #: previous calibration epoch's schedule).  Backends that honour it
    #: fall back per-decision when a hinted option is missing/infeasible.
    hint: Optional[Mapping[str, str]] = None

    def cost(self, assignment: Sequence[int]) -> float:
        return self.partial_cost(tuple(assignment))


@dataclass
class SolveResult:
    """A backend's answer plus attribution, for race bookkeeping."""

    solution: Solution
    backend: str
    seconds: float


# ----------------------------------------------------------------------
# shared primitives
# ----------------------------------------------------------------------
def lp_minimize(model: ScheduleModel,
                constraints: Sequence[DiffConstraint]
                ) -> Optional[Tuple[float, np.ndarray]]:
    """Minimize the model's linear objective subject to ``constraints``.

    Returns ``(value, x)`` or None when infeasible.  With an all-zero
    objective the ASAP solution from the feasibility check is used
    directly (no LP call).
    """
    asap = difference_feasible(model.num_vars, constraints)
    if asap is None:
        return None
    objective = model.objective
    if not any(abs(c) > 0.0 for c in objective.values()):
        return model.objective_offset, np.asarray(asap)

    n = model.num_vars
    c = np.zeros(n)
    for var, coeff in objective.items():
        c[var] = coeff
    rows = []
    rhs = []
    bounds_lo = np.zeros(n)
    for con in constraints:
        if con.var_lo is None:
            bounds_lo[con.var_hi] = max(bounds_lo[con.var_hi], con.offset)
            continue
        # x_hi - x_lo >= off  ->  -x_hi + x_lo <= -off
        row = np.zeros(n)
        row[con.var_hi] = -1.0
        row[con.var_lo] = 1.0
        rows.append(row)
        rhs.append(-con.offset)
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.asarray(rhs) if rows else None
    result = optimize.linprog(
        c, A_ub=a_ub, b_ub=b_ub,
        bounds=list(zip(bounds_lo, [None] * n)),
        method="highs",
    )
    if not result.success:
        # Infeasibility should have been caught by Bellman-Ford; treat
        # any other failure as infeasible to stay conservative.
        return None
    return float(result.fun) + model.objective_offset, result.x


def first_feasible(model: ScheduleModel, assignment: Sequence[int],
                   decision: Decision) -> int:
    """The lowest-index feasible option, found without LP scoring."""
    base = list(assignment)
    for k in range(len(decision.options)):
        feasible = difference_feasible(
            model.num_vars, model.constraints_for(base + [k]),
        )
        if feasible is not None:
            return k
    raise RuntimeError(
        f"decision {decision.name!r} has no feasible option given "
        "earlier choices"
    )


def evaluate(request: SolveRequest, assignment: Sequence[int],
             *, exact: bool = False,
             interrupt: Optional[str] = None,
             nodes: Optional[int] = None) -> Optional[Solution]:
    """LP-score a complete assignment into a :class:`Solution` (or None
    when the assignment is infeasible)."""
    model = request.model
    lp = lp_minimize(model, model.constraints_for(assignment))
    if lp is None:
        return None
    constant = request.cost(assignment)
    return Solution(
        assignment=tuple(assignment),
        times=tuple(float(v) for v in lp[1]),
        objective=constant + lp[0],
        constant_part=constant,
        linear_part=lp[0],
        nodes_explored=len(assignment) if nodes is None else nodes,
        exact=exact,
        interrupt=interrupt,
    )


def assignment_from_hint(request: SolveRequest) -> Optional[List[int]]:
    """Build a complete, feasible assignment from ``request.hint``.

    Hinted options are taken when present and feasible given the prefix;
    every other decision falls back to its first feasible option.  Returns
    None when no hint was supplied at all.
    """
    hint = request.hint
    if not hint:
        return None
    model = request.model
    assignment: List[int] = []
    for decision in model.decisions:
        choice: Optional[int] = None
        label = hint.get(decision.name)
        if label is not None:
            for k, option in enumerate(decision.options):
                if option.label == label:
                    feasible = difference_feasible(
                        model.num_vars,
                        model.constraints_for(assignment + [k]),
                    )
                    if feasible is not None:
                        choice = k
                    break
        if choice is None:
            choice = first_feasible(model, assignment, decision)
        assignment.append(choice)
    return assignment


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class SolverBackend:
    """Base class: a named, deterministic, picklable solve strategy."""

    #: Stable backend identifier; doubles as the canonical race key.
    name = "backend"

    def solve(self, request: SolveRequest) -> Solution:
        raise NotImplementedError

    def run(self, request: SolveRequest) -> SolveResult:
        """:meth:`solve` wrapped with wall-time attribution."""
        started = time.perf_counter()
        solution = self.solve(request)
        return SolveResult(
            solution=solution,
            backend=self.name,
            seconds=time.perf_counter() - started,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class GreedyDive(SolverBackend):
    """One best-bound pass over the decisions, no backtracking.

    When the budget expires mid-dive, the remaining decisions are taken
    by first-feasibility (no LP scoring) — still a valid schedule, just
    no longer cost-guided — and the result is marked
    ``interrupt="deadline"``.
    """

    name = "greedy"

    def solve(self, request: SolveRequest) -> Solution:
        model = request.model
        budget = request.budget
        armed = budget.arm()
        interrupt: Optional[str] = None
        assignment: List[int] = []
        try:
            for decision in model.decisions:
                if budget.expired():
                    interrupt = "deadline"
                    assignment.append(
                        first_feasible(model, assignment, decision)
                    )
                    continue
                best_k = None
                best_score = float("inf")
                for k in range(len(decision.options)):
                    candidate = assignment + [k]
                    lp = lp_minimize(model, model.constraints_for(candidate))
                    if lp is None:
                        continue
                    score = request.cost(candidate) + lp[0]
                    if score < best_score - 1e-12:
                        best_score = score
                        best_k = k
                if best_k is None:
                    raise RuntimeError(
                        f"decision {decision.name!r} has no feasible option "
                        "given earlier choices"
                    )
                assignment.append(best_k)
        finally:
            if armed:
                budget.disarm()
        solution = evaluate(
            request, assignment,
            exact=len(model.decisions) == 0 and interrupt is None,
            interrupt=interrupt,
        )
        if solution is None:  # pragma: no cover - guarded per step
            raise RuntimeError("greedy produced an infeasible assignment")
        return solution


class ExactBnB(SolverBackend):
    """Depth-first branch-and-bound with LP bounding.

    Exact (``solution.exact``) unless the node cap or the budget cuts the
    search short, in which case the best incumbent found so far is
    returned with the interrupt reason recorded.
    """

    name = "exact"

    def solve(self, request: SolveRequest) -> Solution:
        model = request.model
        budget = request.budget
        armed = budget.arm()
        state = {"nodes": 0, "interrupted": False, "reason": None}
        try:
            # Incumbent first: dramatically improves pruning.  The caller
            # may supply one (warm start / race seeding); otherwise dive.
            incumbent = request.incumbent
            if incumbent is None:
                incumbent = GreedyDive().solve(request)
            best = [incumbent.objective, incumbent]
            if incumbent.interrupt is not None:
                state["interrupted"] = True
                state["reason"] = incumbent.interrupt

            def recurse(prefix: List[int]) -> None:
                if state["interrupted"]:
                    return
                state["nodes"] += 1
                if state["nodes"] > request.max_nodes:
                    state["interrupted"] = True
                    state["reason"] = "nodes"
                    return
                if budget.expired():
                    state["interrupted"] = True
                    state["reason"] = "deadline"
                    return
                constraints = model.constraints_for(prefix)
                lp = lp_minimize(model, constraints)
                if lp is None:
                    return  # infeasible branch
                constant = request.cost(prefix)
                bound = constant + lp[0]
                if bound >= best[0] - 1e-12:
                    return
                if len(prefix) == len(model.decisions):
                    best[0] = bound
                    best[1] = Solution(
                        assignment=tuple(prefix),
                        times=tuple(float(v) for v in lp[1]),
                        objective=bound,
                        constant_part=constant,
                        linear_part=lp[0],
                        nodes_explored=state["nodes"],
                        exact=True,
                    )
                    return
                decision = model.decisions[len(prefix)]
                # Explore options in ascending immediate-cost order.
                scored = sorted(
                    range(len(decision.options)),
                    key=lambda k: request.cost(prefix + [k]),
                )
                for k in scored:
                    prefix.append(k)
                    recurse(prefix)
                    prefix.pop()

            recurse([])
        finally:
            if armed:
                budget.disarm()
        solution = best[1]
        return Solution(
            assignment=solution.assignment,
            times=solution.times,
            objective=solution.objective,
            constant_part=solution.constant_part,
            linear_part=solution.linear_part,
            nodes_explored=state["nodes"],
            exact=not state["interrupted"],
            interrupt=state["reason"],
        )


class LocalSearch(SolverBackend):
    """Hill-climbing over single-decision flips.

    Starts from the warm-start hint when the request carries one (the
    previous calibration epoch's schedule), else from a greedy dive, then
    repeatedly re-decides each decision to its best option given all the
    others until a full pass improves nothing, the budget expires, or
    ``max_rounds`` passes complete.  ``nodes_explored`` counts LP
    evaluations.
    """

    name = "local_search"

    def __init__(self, max_rounds: int = 8):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = max_rounds

    def __repr__(self) -> str:
        return f"LocalSearch(max_rounds={self.max_rounds})"

    def solve(self, request: SolveRequest) -> Solution:
        model = request.model
        budget = request.budget
        armed = budget.arm()
        interrupt: Optional[str] = None
        evals = 0
        try:
            start = assignment_from_hint(request)
            if start is not None:
                current = evaluate(request, start)
            else:
                current = None
            if current is None:
                dive = GreedyDive().solve(request)
                current = dive
                if dive.interrupt is not None:
                    interrupt = dive.interrupt
            assignment = list(current.assignment)
            objective = current.objective
            for _ in range(self.max_rounds):
                improved = False
                for k, decision in enumerate(model.decisions):
                    if budget.expired():
                        interrupt = "deadline"
                        break
                    held = assignment[k]
                    for option in range(len(decision.options)):
                        if option == held:
                            continue
                        assignment[k] = option
                        candidate = evaluate(request, assignment)
                        evals += 1
                        if (candidate is not None
                                and candidate.objective < objective - 1e-12):
                            objective = candidate.objective
                            current = candidate
                            held = option
                            improved = True
                        assignment[k] = held
                if interrupt == "deadline" or not improved:
                    break
        finally:
            if armed:
                budget.disarm()
        return Solution(
            assignment=current.assignment,
            times=current.times,
            objective=current.objective,
            constant_part=current.constant_part,
            linear_part=current.linear_part,
            nodes_explored=max(evals, current.nodes_explored),
            exact=len(model.decisions) == 0 and interrupt is None,
            interrupt=interrupt,
        )
