"""Branch-and-bound optimizer over decisions + difference constraints + LP.

The solver minimizes::

    partial_cost(assignment)  +  min_x  sum_v objective[v] * x_v
                                 s.t.   difference constraints(assignment)

where ``partial_cost`` is a caller-supplied callback that must be
*monotone*: extending an assignment may never decrease it.  For the
crosstalk scheduler this is the ``ω Σ log g.ε`` gate-error part (deciding
an overlap can only raise conditional error rates), and the LP part is the
``(1-ω) Σ q.t / q.T`` decoherence part (adding constraints can only raise
the minimal lifetimes).  Both monotonicities make the node lower bound
``partial_cost(prefix) + LP(prefix constraints)`` admissible, so the
depth-first search is exact.

For instances with many decisions (the supremacy scalability study) the
solver switches to a greedy dive: decisions are taken one at a time,
choosing the option with the best bound — the same mechanism, without
backtracking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.obs.events import log_event
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.smt.feasibility import difference_feasible
from repro.smt.model import DiffConstraint, ScheduleModel

PartialCost = Callable[[Tuple[int, ...]], float]


@dataclass
class Solution:
    """Solver output.

    ``interrupt`` records why the search was cut short, if it was:
    ``"deadline"`` (the ``time_limit`` budget expired) or ``"nodes"``
    (the ``max_nodes`` cap).  An interrupted solution is still *valid* —
    it satisfies every constraint — just not proven optimal; callers like
    :class:`~repro.core.scheduling.xtalk.XtalkScheduler` use the field to
    decide whether to keep the incumbent or fall back entirely.
    """

    assignment: Tuple[int, ...]
    times: Tuple[float, ...]
    objective: float
    constant_part: float
    linear_part: float
    nodes_explored: int
    exact: bool
    interrupt: Optional[str] = None

    def option_labels(self, model: ScheduleModel) -> Tuple[str, ...]:
        return tuple(
            decision.options[choice].label
            for decision, choice in zip(model.decisions, self.assignment)
        )


class OptimizingSolver:
    """Exact (small) / greedy (large) optimizer for a :class:`ScheduleModel`."""

    def __init__(self, model: ScheduleModel, partial_cost: Optional[PartialCost] = None,
                 exact_decision_limit: int = 14, max_nodes: int = 200_000,
                 time_limit: Optional[float] = None):
        self.model = model
        self.partial_cost = partial_cost or (lambda assignment: 0.0)
        self.exact_decision_limit = exact_decision_limit
        self.max_nodes = max_nodes
        self.time_limit = time_limit
        self._nodes = 0
        self._deadline: Optional[float] = None
        self._interrupted = False
        self._interrupt_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # time budget
    # ------------------------------------------------------------------
    def _arm_deadline(self) -> bool:
        """Start the ``time_limit`` clock if set and not already running.

        Returns True when this call armed it (the caller then owns
        clearing it), so :meth:`solve_exact` and the greedy incumbent it
        seeds share one budget instead of restarting the clock.
        """
        if self.time_limit is not None and self._deadline is None:
            self._deadline = time.monotonic() + self.time_limit
            return True
        return False

    def _deadline_passed(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    # ------------------------------------------------------------------
    # LP over difference constraints
    # ------------------------------------------------------------------
    def _lp_minimize(self, constraints: Sequence[DiffConstraint]) -> Optional[Tuple[float, np.ndarray]]:
        """Minimize the linear objective subject to ``constraints``.

        Returns ``(value, x)`` or None when infeasible.  With an all-zero
        objective the ASAP solution from the feasibility check is used
        directly (no LP call).
        """
        asap = difference_feasible(self.model.num_vars, constraints)
        if asap is None:
            return None
        objective = self.model.objective
        if not any(abs(c) > 0.0 for c in objective.values()):
            return self.model.objective_offset, np.asarray(asap)

        n = self.model.num_vars
        c = np.zeros(n)
        for var, coeff in objective.items():
            c[var] = coeff
        rows = []
        rhs = []
        bounds_lo = np.zeros(n)
        for con in constraints:
            if con.var_lo is None:
                bounds_lo[con.var_hi] = max(bounds_lo[con.var_hi], con.offset)
                continue
            # x_hi - x_lo >= off  ->  -x_hi + x_lo <= -off
            row = np.zeros(n)
            row[con.var_hi] = -1.0
            row[con.var_lo] = 1.0
            rows.append(row)
            rhs.append(-con.offset)
        a_ub = np.vstack(rows) if rows else None
        b_ub = np.asarray(rhs) if rows else None
        result = optimize.linprog(
            c, A_ub=a_ub, b_ub=b_ub,
            bounds=list(zip(bounds_lo, [None] * n)),
            method="highs",
        )
        if not result.success:
            # Infeasibility should have been caught by Bellman-Ford; treat
            # any other failure as infeasible to stay conservative.
            return None
        return float(result.fun) + self.model.objective_offset, result.x

    # ------------------------------------------------------------------
    def solve(self) -> Solution:
        """Exact B&B when the decision count is small, else greedy dive.

        Opens an ``smt.solve`` observability span (nested under whatever
        pass or session is active) carrying solve time, node count, and
        the model's constraint/variable/decision counts in the
        ``smt.solve.*`` namespace, mirrors the same figures into the
        process-wide metrics registry, and logs one ``smt.solve`` event.
        """
        model = self.model
        with obs_span("smt.solve") as record:
            started = time.perf_counter()
            if len(model.decisions) <= self.exact_decision_limit:
                solution = self.solve_exact()
            else:
                solution = self.solve_greedy()
            seconds = time.perf_counter() - started
            record.counters.update({
                "smt.solve.seconds": seconds,
                "smt.solve.nodes": float(solution.nodes_explored),
                "smt.solve.decisions": float(len(model.decisions)),
                "smt.solve.constraints": float(len(model.base_constraints)),
                "smt.solve.variables": float(model.num_vars),
                "smt.solve.exact": 1.0 if solution.exact else 0.0,
                "smt.solve.interrupted": 1.0 if solution.interrupt else 0.0,
            })
            registry = get_registry()
            registry.inc("smt.solves")
            registry.inc("smt.nodes_explored", solution.nodes_explored)
            registry.observe("smt.solve.seconds", seconds)
            registry.set("smt.last.constraints", len(model.base_constraints))
            registry.set("smt.last.decisions", len(model.decisions))
            log_event(
                "smt.solve",
                seconds=seconds,
                nodes=solution.nodes_explored,
                decisions=len(model.decisions),
                constraints=len(model.base_constraints),
                variables=model.num_vars,
                exact=solution.exact,
                interrupt=solution.interrupt,
                objective=solution.objective,
            )
        return solution

    # ------------------------------------------------------------------
    def solve_exact(self) -> Solution:
        self._nodes = 0
        self._interrupted = False
        self._interrupt_reason = None
        armed = self._arm_deadline()
        # Greedy incumbent first: dramatically improves pruning.
        incumbent = self.solve_greedy()
        best = [incumbent.objective, incumbent]
        if incumbent.interrupt is not None:
            self._interrupted = True
            self._interrupt_reason = incumbent.interrupt

        def recurse(prefix: List[int]) -> None:
            if self._interrupted:
                return
            self._nodes += 1
            if self._nodes > self.max_nodes:
                self._interrupted = True
                self._interrupt_reason = "nodes"
                return
            if self._deadline_passed():
                self._interrupted = True
                self._interrupt_reason = "deadline"
                return
            constraints = self.model.constraints_for(prefix)
            lp = self._lp_minimize(constraints)
            if lp is None:
                return  # infeasible branch
            constant = self.partial_cost(tuple(prefix))
            bound = constant + lp[0]
            if bound >= best[0] - 1e-12:
                return
            if len(prefix) == len(self.model.decisions):
                best[0] = bound
                best[1] = Solution(
                    assignment=tuple(prefix),
                    times=tuple(float(v) for v in lp[1]),
                    objective=bound,
                    constant_part=constant,
                    linear_part=lp[0],
                    nodes_explored=self._nodes,
                    exact=True,
                )
                return
            decision = self.model.decisions[len(prefix)]
            # Explore options in ascending immediate-cost order.
            scored = sorted(
                range(len(decision.options)),
                key=lambda k: self.partial_cost(tuple(prefix + [k])),
            )
            for k in scored:
                prefix.append(k)
                recurse(prefix)
                prefix.pop()

        recurse([])
        if armed:
            self._deadline = None
        solution = best[1]
        solution = Solution(
            assignment=solution.assignment,
            times=solution.times,
            objective=solution.objective,
            constant_part=solution.constant_part,
            linear_part=solution.linear_part,
            nodes_explored=self._nodes,
            exact=not self._interrupted,
            interrupt=self._interrupt_reason,
        )
        return solution

    # ------------------------------------------------------------------
    def solve_greedy(self) -> Solution:
        armed = self._arm_deadline()
        interrupt: Optional[str] = None
        assignment: List[int] = []
        try:
            for decision in self.model.decisions:
                if self._deadline_passed():
                    # Budget spent: stop scoring options with LPs and dive
                    # to the first feasible completion — still a valid
                    # schedule, just no longer cost-guided.
                    interrupt = "deadline"
                    assignment.append(self._first_feasible(assignment, decision))
                    continue
                best_k = None
                best_score = float("inf")
                for k in range(len(decision.options)):
                    candidate = assignment + [k]
                    lp = self._lp_minimize(self.model.constraints_for(candidate))
                    if lp is None:
                        continue
                    score = self.partial_cost(tuple(candidate)) + lp[0]
                    if score < best_score - 1e-12:
                        best_score = score
                        best_k = k
                if best_k is None:
                    raise RuntimeError(
                        f"decision {decision.name!r} has no feasible option given "
                        "earlier choices"
                    )
                assignment.append(best_k)
        finally:
            if armed:
                self._deadline = None
        lp = self._lp_minimize(self.model.constraints_for(assignment))
        if lp is None:  # pragma: no cover - guarded by per-step feasibility
            raise RuntimeError("greedy produced an infeasible assignment")
        constant = self.partial_cost(tuple(assignment))
        return Solution(
            assignment=tuple(assignment),
            times=tuple(float(v) for v in lp[1]),
            objective=constant + lp[0],
            constant_part=constant,
            linear_part=lp[0],
            nodes_explored=len(assignment),
            exact=len(self.model.decisions) == 0 and interrupt is None,
            interrupt=interrupt,
        )

    def _first_feasible(self, assignment: List[int], decision) -> int:
        """The lowest-index feasible option, found without LP scoring."""
        for k in range(len(decision.options)):
            feasible = difference_feasible(
                self.model.num_vars,
                self.model.constraints_for(assignment + [k]),
            )
            if feasible is not None:
                return k
        raise RuntimeError(
            f"decision {decision.name!r} has no feasible option given "
            "earlier choices"
        )
