"""Façade over the interchangeable solver backends.

The solver minimizes::

    partial_cost(assignment)  +  min_x  sum_v objective[v] * x_v
                                 s.t.   difference constraints(assignment)

where ``partial_cost`` is a caller-supplied callback that must be
*monotone*: extending an assignment may never decrease it.  For the
crosstalk scheduler this is the ``ω Σ log g.ε`` gate-error part (deciding
an overlap can only raise conditional error rates), and the LP part is the
``(1-ω) Σ q.t / q.T`` decoherence part (adding constraints can only raise
the minimal lifetimes).  Both monotonicities make the node lower bound
``partial_cost(prefix) + LP(prefix constraints)`` admissible, so the
depth-first search is exact.

The search strategies themselves live in :mod:`repro.smt.backends`
(:class:`~repro.smt.backends.ExactBnB`,
:class:`~repro.smt.backends.GreedyDive`,
:class:`~repro.smt.backends.LocalSearch`) behind the
:class:`~repro.smt.backends.SolveRequest` contract; this class keeps the
historical constructor, the ``solve()`` auto-switch (exact below
``exact_decision_limit`` decisions, greedy above), and the ``smt.solve``
observability envelope, so existing callers — including the resilience
deadline/fallback paths — see identical behavior.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.obs.events import log_event
from repro.obs.live.heartbeat import heartbeat
from repro.obs.registry import get_registry
from repro.obs.trace import span as obs_span
from repro.smt.backends import (
    ExactBnB,
    GreedyDive,
    PartialCost,
    Solution,
    SolveRequest,
    SolverBackend,
    lp_minimize,
    zero_cost,
)
from repro.smt.budget import Budget
from repro.smt.model import DiffConstraint, ScheduleModel

__all__ = ["OptimizingSolver", "Solution", "PartialCost"]


class OptimizingSolver:
    """Exact (small) / greedy (large) optimizer for a :class:`ScheduleModel`.

    ``budget`` (a shared :class:`~repro.smt.budget.Budget`) is the
    preferred way to bound solve time; the legacy ``time_limit`` float is
    kept for compatibility and wraps itself in an owned budget.  When both
    are given the explicit budget wins — the scheduler relies on this to
    hand every layer one clock.  ``backend`` pins a specific
    :class:`~repro.smt.backends.SolverBackend`, bypassing the
    decision-count auto-switch in :meth:`solve`.
    """

    def __init__(self, model: ScheduleModel, partial_cost: Optional[PartialCost] = None,
                 exact_decision_limit: int = 14, max_nodes: int = 200_000,
                 time_limit: Optional[float] = None,
                 budget: Optional[Budget] = None,
                 backend: Optional[SolverBackend] = None,
                 hint=None):
        self.model = model
        self.partial_cost = partial_cost or zero_cost
        self.exact_decision_limit = exact_decision_limit
        self.max_nodes = max_nodes
        self.time_limit = time_limit
        self.budget = budget if budget is not None else Budget(time_limit)
        self.backend = backend
        #: Warm-start hint (decision name -> option label), forwarded to
        #: backends that honour it (LocalSearch, portfolio warm entrants).
        self.hint = hint

    # ------------------------------------------------------------------
    def request(self, incumbent: Optional[Solution] = None) -> SolveRequest:
        """The :class:`SolveRequest` this solver hands its backends."""
        return SolveRequest(
            model=self.model,
            partial_cost=self.partial_cost,
            budget=self.budget,
            exact_decision_limit=self.exact_decision_limit,
            max_nodes=self.max_nodes,
            incumbent=incumbent,
            hint=self.hint,
        )

    # ------------------------------------------------------------------
    # LP over difference constraints (kept as a method: tests and the
    # brute-force reference call it directly)
    # ------------------------------------------------------------------
    def _lp_minimize(self, constraints: Sequence[DiffConstraint]
                     ) -> Optional[Tuple[float, np.ndarray]]:
        return lp_minimize(self.model, constraints)

    # ------------------------------------------------------------------
    def solve(self) -> Solution:
        """Exact B&B when the decision count is small, else greedy dive
        (or the pinned ``backend`` when one was supplied).

        Opens an ``smt.solve`` observability span (nested under whatever
        pass or session is active) carrying solve time, node count, and
        the model's constraint/variable/decision counts in the
        ``smt.solve.*`` namespace, mirrors the same figures into the
        process-wide metrics registry, and logs one ``smt.solve`` event.
        """
        model = self.model
        with obs_span("smt.solve") as record:
            heartbeat("smt.solve", status="solving",
                      decisions=len(model.decisions),
                      constraints=len(model.base_constraints))
            started = time.perf_counter()
            if self.backend is not None:
                solution = self.backend.solve(self.request())
            elif len(model.decisions) <= self.exact_decision_limit:
                solution = self.solve_exact()
            else:
                solution = self.solve_greedy()
            seconds = time.perf_counter() - started
            heartbeat("smt.solve", status="done", seconds=seconds,
                      nodes=solution.nodes_explored)
            record.counters.update({
                "smt.solve.seconds": seconds,
                "smt.solve.nodes": float(solution.nodes_explored),
                "smt.solve.decisions": float(len(model.decisions)),
                "smt.solve.constraints": float(len(model.base_constraints)),
                "smt.solve.variables": float(model.num_vars),
                "smt.solve.exact": 1.0 if solution.exact else 0.0,
                "smt.solve.interrupted": 1.0 if solution.interrupt else 0.0,
            })
            registry = get_registry()
            registry.inc("smt.solves")
            registry.inc("smt.nodes_explored", solution.nodes_explored)
            registry.observe("smt.solve.seconds", seconds)
            registry.set("smt.last.constraints", len(model.base_constraints))
            registry.set("smt.last.decisions", len(model.decisions))
            log_event(
                "smt.solve",
                seconds=seconds,
                nodes=solution.nodes_explored,
                decisions=len(model.decisions),
                constraints=len(model.base_constraints),
                variables=model.num_vars,
                exact=solution.exact,
                interrupt=solution.interrupt,
                objective=solution.objective,
            )
        return solution

    # ------------------------------------------------------------------
    def solve_exact(self) -> Solution:
        return ExactBnB().solve(self.request())

    def solve_greedy(self) -> Solution:
        return GreedyDive().solve(self.request())
