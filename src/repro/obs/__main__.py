"""Command-line entry point for the observability layer.

Four subcommands::

    python -m repro.obs report  <files...>  [--format text|json]
    python -m repro.obs diff    <baseline> <candidate> [--gate]
    python -m repro.obs diff    <candidate> --history H.jsonl --last 5 --gate
    python -m repro.obs profile <trace> [--format text|collapsed|speedscope]
    python -m repro.obs history <store.jsonl> [--last N] [--compact N]

``report`` renders any obs artefact (trace, metrics, manifest, diff,
profile, scorecard, history record or store); ``--format json`` emits the
canonical document(s) instead of text.  ``diff`` compares two runs — or a
candidate against a history window — with the noise-aware comparator of
:mod:`repro.obs.diff`; with ``--gate`` it exits nonzero when anything
regressed (the CI hook).  ``profile`` turns a v2 trace into self/total
attribution, collapsed stacks, or a speedscope document.  ``history``
lists or compacts a run store.

Exit codes are stable: **0** success (and, for ``diff --gate``, no
regression); **1** bad input — unreadable file, unknown schema, empty
history; **2** the gate tripped (``diff --gate`` found a regression).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .diff import DiffThresholds, diff_records, format_diff
from .history import RunHistory, format_history_report, load_run_record
from .profile import (collapsed_stacks, profile_trace, speedscope_document,
                      validate_speedscope)
from .report import DEFAULT_TOP_K, report, report_json

#: Exit code for bad input (unreadable file, unknown schema, empty store).
EXIT_ERROR = 1
#: Exit code when ``diff --gate`` finds a regression.
EXIT_GATE = 2


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and compare repro observability artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser(
        "report",
        help="render an obs artefact (trace/metrics/manifest/diff/"
             "profile/scorecard/history) as text or JSON",
    )
    rep.add_argument("files", nargs="+",
                     help="artefact JSON file(s) to render")
    rep.add_argument("--top-k", type=int, default=DEFAULT_TOP_K,
                     help="counters shown in the top-counters table "
                          f"(default {DEFAULT_TOP_K})")
    rep.add_argument("--format", choices=("text", "json"), default="text",
                     help="output format (default text)")

    dif = sub.add_parser(
        "diff",
        help="noise-aware comparison of two runs, or one run vs. a "
             "history baseline window",
    )
    dif.add_argument("baseline",
                     help="baseline run (manifest/history record/.jsonl "
                          "store), or the candidate when --history is used")
    dif.add_argument("candidate", nargs="?",
                     help="candidate run (omit when using --history)")
    dif.add_argument("--history", metavar="STORE",
                     help="history store supplying the baseline window "
                          "(the positional argument becomes the candidate)")
    dif.add_argument("--last", type=int, default=5,
                     help="baseline window size from --history (default 5)")
    dif.add_argument("--name", default=None,
                     help="restrict the --history window to one run name "
                          "(default: the candidate's name)")
    dif.add_argument("--gate", action="store_true",
                     help=f"exit {EXIT_GATE} when any series regressed")
    dif.add_argument("--rel", type=float, default=DiffThresholds.rel,
                     help="relative tolerance around the baseline median "
                          f"(default {DiffThresholds.rel})")
    dif.add_argument("--mad-scale", type=float,
                     default=DiffThresholds.mad_scale,
                     help="MAD multiplier in the noise band "
                          f"(default {DiffThresholds.mad_scale})")
    dif.add_argument("--show-unchanged", action="store_true",
                     help="list unchanged series too")
    dif.add_argument("--format", choices=("text", "json"), default="text",
                     help="output format (default text)")

    prof = sub.add_parser(
        "profile",
        help="deterministic span profile of a trace (self/total, "
             "collapsed stacks, speedscope)",
    )
    prof.add_argument("trace", help="trace JSON file (v1 or v2)")
    prof.add_argument("--format",
                      choices=("text", "json", "collapsed", "speedscope"),
                      default="text", help="output format (default text)")
    prof.add_argument("--out", default=None,
                      help="write output to this path instead of stdout")
    prof.add_argument("--top-k", type=int, default=15,
                      help="rows in the text table (default 15)")

    hist = sub.add_parser(
        "history",
        help="list or compact an append-only run-history store",
    )
    hist.add_argument("store", help="history .jsonl file")
    hist.add_argument("--last", type=int, default=10,
                      help="records shown (default 10)")
    hist.add_argument("--name", default=None,
                      help="only records for this run name")
    hist.add_argument("--compact", type=int, metavar="KEEP", default=None,
                      help="retention: keep the newest KEEP records per "
                           "run name, rewrite the store")
    return parser


def _warn_dirty(label: str, record) -> None:
    """Print a stderr warning when a compared run came from a dirty tree."""
    if record.git_dirty:
        print(f"warning: {label} run {record.run_id!r} was recorded from a "
              f"dirty working tree — its numbers may not match its SHA",
              file=sys.stderr)


def _cmd_report(args: argparse.Namespace) -> int:
    """``report``: render each file; returns a stable exit code."""
    try:
        if args.format == "json":
            output = report_json(list(args.files))
        else:
            output = "\n\n".join(
                report(path, top_k=args.top_k) for path in args.files
            )
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    try:
        print(output)
    except BrokenPipeError:
        pass
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """``diff``: compare runs; exit 2 on a gated regression."""
    thresholds = DiffThresholds(rel=args.rel, mad_scale=args.mad_scale)
    try:
        if args.history:
            candidate = load_run_record(args.baseline)
            name = args.name if args.name is not None else candidate.name
            window = RunHistory(args.history).last(args.last, name=name)
            if not window:
                raise ValueError(
                    f"history {args.history!r} has no records"
                    + (f" named {name!r}" if name else "")
                )
            baseline = window
        else:
            if not args.candidate:
                raise ValueError(
                    "diff needs two runs, or one run plus --history"
                )
            baseline_record = load_run_record(args.baseline)
            candidate = load_run_record(args.candidate)
            _warn_dirty("baseline", baseline_record)
            baseline = baseline_record
        _warn_dirty("candidate", candidate)
        run_diff = diff_records(baseline, candidate, thresholds)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.format == "json":
        print(run_diff.to_json(indent=2))
    else:
        print(format_diff(run_diff, show_unchanged=args.show_unchanged))
    if args.gate:
        code = run_diff.gate_exit_code()
        if code:
            print(f"gate: {len(run_diff.regressions)} series regressed",
                  file=sys.stderr)
        return code
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``profile``: emit the requested view of one trace."""
    import json as _json

    try:
        if args.format == "collapsed":
            output = collapsed_stacks(args.trace)
        elif args.format == "speedscope":
            doc = speedscope_document(args.trace)
            problems = validate_speedscope(doc)
            if problems:
                raise ValueError(
                    "speedscope export failed validation: "
                    + "; ".join(problems)
                )
            output = _json.dumps(doc, indent=2, sort_keys=True)
        elif args.format == "json":
            output = _json.dumps(profile_trace(args.trace).to_dict(),
                                 indent=2, sort_keys=True)
        else:
            output = profile_trace(args.trace).format(top_k=args.top_k)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {args.trace}: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
        print(f"wrote {args.format} profile to {args.out}")
    else:
        try:
            print(output)
        except BrokenPipeError:
            pass
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    """``history``: list the store (and optionally compact it)."""
    history = RunHistory(args.store)
    try:
        if args.compact is not None:
            dropped = history.compact(keep_last=args.compact)
            print(f"compacted {args.store}: dropped {dropped} record(s)")
        print(format_history_report(history, last=args.last,
                                    name=args.name))
    except (OSError, ValueError) as error:
        print(f"error: {args.store}: {error}", file=sys.stderr)
        return EXIT_ERROR
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code (see module docstring)."""
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "history":
        return _cmd_history(args)
    return EXIT_ERROR  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
