"""Command-line entry point for the observability layer.

Six subcommands::

    python -m repro.obs report  <files...>  [--format text|json]
    python -m repro.obs diff    <baseline> <candidate> [--gate]
    python -m repro.obs diff    <candidate> --history H.jsonl --last 5 --gate
    python -m repro.obs profile <trace> [--format text|collapsed|speedscope]
    python -m repro.obs history <store.jsonl> [--last N] [--compact N]
    python -m repro.obs tail    <snapshots.jsonl> [--follow] [--last N]
    python -m repro.obs top     <snapshots.jsonl> [--follow]

``report`` renders any obs artefact (trace, metrics, manifest, diff,
profile, scorecard, history record or store); ``--format json`` emits the
canonical document(s) instead of text.  ``diff`` compares two runs — or a
candidate against a history window — with the noise-aware comparator of
:mod:`repro.obs.diff`; with ``--gate`` it exits nonzero when anything
regressed (the CI hook).  ``profile`` turns a v2 trace into self/total
attribution, collapsed stacks, or a speedscope document.  ``history``
lists or compacts a run store.  ``tail`` streams a live plane's snapshot
JSONL (one line per ``repro.obs.snapshot/v1`` document; ``--follow``
keeps reading as the run appends).  ``top`` renders the latest snapshot
as a fleet/campaign/parallel progress board and, with ``--follow``,
redraws it live.

Exit codes are stable: **0** success (and, for ``diff --gate``, no
regression); **1** bad input — unreadable file, unknown schema, empty
history; **2** the gate tripped (``diff --gate`` found a regression).
"""

from __future__ import annotations

import argparse
import json as _json_mod
import sys
from typing import List, Optional

from .diff import DiffThresholds, diff_records, format_diff
from .history import RunHistory, format_history_report, load_run_record
from .live.snapshot import SNAPSHOT_SCHEMA, read_snapshots, tail_records
from .profile import (collapsed_stacks, profile_trace, speedscope_document,
                      validate_speedscope)
from .report import DEFAULT_TOP_K, report, report_json

#: Exit code for bad input (unreadable file, unknown schema, empty store).
EXIT_ERROR = 1
#: Exit code when ``diff --gate`` finds a regression.
EXIT_GATE = 2


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and compare repro observability artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser(
        "report",
        help="render an obs artefact (trace/metrics/manifest/diff/"
             "profile/scorecard/history) as text or JSON",
    )
    rep.add_argument("files", nargs="+",
                     help="artefact JSON file(s) to render")
    rep.add_argument("--top-k", type=int, default=DEFAULT_TOP_K,
                     help="counters shown in the top-counters table "
                          f"(default {DEFAULT_TOP_K})")
    rep.add_argument("--format", choices=("text", "json"), default="text",
                     help="output format (default text)")

    dif = sub.add_parser(
        "diff",
        help="noise-aware comparison of two runs, or one run vs. a "
             "history baseline window",
    )
    dif.add_argument("baseline",
                     help="baseline run (manifest/history record/.jsonl "
                          "store), or the candidate when --history is used")
    dif.add_argument("candidate", nargs="?",
                     help="candidate run (omit when using --history)")
    dif.add_argument("--history", metavar="STORE",
                     help="history store supplying the baseline window "
                          "(the positional argument becomes the candidate)")
    dif.add_argument("--last", type=int, default=5,
                     help="baseline window size from --history (default 5)")
    dif.add_argument("--name", default=None,
                     help="restrict the --history window to one run name "
                          "(default: the candidate's name)")
    dif.add_argument("--gate", action="store_true",
                     help=f"exit {EXIT_GATE} when any series regressed")
    dif.add_argument("--rel", type=float, default=DiffThresholds.rel,
                     help="relative tolerance around the baseline median "
                          f"(default {DiffThresholds.rel})")
    dif.add_argument("--mad-scale", type=float,
                     default=DiffThresholds.mad_scale,
                     help="MAD multiplier in the noise band "
                          f"(default {DiffThresholds.mad_scale})")
    dif.add_argument("--show-unchanged", action="store_true",
                     help="list unchanged series too")
    dif.add_argument("--format", choices=("text", "json"), default="text",
                     help="output format (default text)")

    prof = sub.add_parser(
        "profile",
        help="deterministic span profile of a trace (self/total, "
             "collapsed stacks, speedscope)",
    )
    prof.add_argument("trace", help="trace JSON file (v1 or v2)")
    prof.add_argument("--format",
                      choices=("text", "json", "collapsed", "speedscope"),
                      default="text", help="output format (default text)")
    prof.add_argument("--out", default=None,
                      help="write output to this path instead of stdout")
    prof.add_argument("--top-k", type=int, default=15,
                      help="rows in the text table (default 15)")

    hist = sub.add_parser(
        "history",
        help="list or compact an append-only run-history store",
    )
    hist.add_argument("store", help="history .jsonl file")
    hist.add_argument("--last", type=int, default=10,
                      help="records shown (default 10)")
    hist.add_argument("--name", default=None,
                      help="only records for this run name")
    hist.add_argument("--compact", type=int, metavar="KEEP", default=None,
                      help="retention: keep the newest KEEP records per "
                           "run name, rewrite the store")

    tail = sub.add_parser(
        "tail",
        help="stream a live plane's snapshot JSONL (tolerates torn "
             "lines from a concurrent writer)",
    )
    tail.add_argument("stream", help="snapshot .jsonl file")
    tail.add_argument("--follow", action="store_true",
                      help="keep reading as the file grows")
    tail.add_argument("--interval", type=float, default=0.2,
                      help="poll period while following (default 0.2s)")
    tail.add_argument("--max-seconds", type=float, default=None,
                      help="stop following after this many seconds")
    tail.add_argument("--last", type=int, default=None,
                      help="only print the last N existing records "
                           "(then follow, if requested)")
    tail.add_argument("--format", choices=("text", "json"), default="text",
                      help="output format (default text)")

    top = sub.add_parser(
        "top",
        help="terminal progress board from the latest snapshot "
             "(fleet / campaign / parallel / alerts)",
    )
    top.add_argument("stream", help="snapshot .jsonl file")
    top.add_argument("--follow", action="store_true",
                     help="redraw as new snapshots arrive")
    top.add_argument("--interval", type=float, default=0.5,
                     help="poll period while following (default 0.5s)")
    top.add_argument("--max-seconds", type=float, default=None,
                     help="stop following after this many seconds")
    return parser


def _warn_dirty(label: str, record) -> None:
    """Print a stderr warning when a compared run came from a dirty tree."""
    if record.git_dirty:
        print(f"warning: {label} run {record.run_id!r} was recorded from a "
              f"dirty working tree — its numbers may not match its SHA",
              file=sys.stderr)


def _cmd_report(args: argparse.Namespace) -> int:
    """``report``: render each file; returns a stable exit code."""
    try:
        if args.format == "json":
            output = report_json(list(args.files))
        else:
            output = "\n\n".join(
                report(path, top_k=args.top_k) for path in args.files
            )
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    try:
        print(output)
    except BrokenPipeError:
        pass
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """``diff``: compare runs; exit 2 on a gated regression."""
    thresholds = DiffThresholds(rel=args.rel, mad_scale=args.mad_scale)
    try:
        if args.history:
            candidate = load_run_record(args.baseline)
            name = args.name if args.name is not None else candidate.name
            window = RunHistory(args.history).last(args.last, name=name)
            if not window:
                raise ValueError(
                    f"history {args.history!r} has no records"
                    + (f" named {name!r}" if name else "")
                )
            baseline = window
        else:
            if not args.candidate:
                raise ValueError(
                    "diff needs two runs, or one run plus --history"
                )
            baseline_record = load_run_record(args.baseline)
            candidate = load_run_record(args.candidate)
            _warn_dirty("baseline", baseline_record)
            baseline = baseline_record
        _warn_dirty("candidate", candidate)
        run_diff = diff_records(baseline, candidate, thresholds)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.format == "json":
        print(run_diff.to_json(indent=2))
    else:
        print(format_diff(run_diff, show_unchanged=args.show_unchanged))
    if args.gate:
        code = run_diff.gate_exit_code()
        if code:
            print(f"gate: {len(run_diff.regressions)} series regressed",
                  file=sys.stderr)
        return code
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``profile``: emit the requested view of one trace."""
    import json as _json

    try:
        if args.format == "collapsed":
            output = collapsed_stacks(args.trace)
        elif args.format == "speedscope":
            doc = speedscope_document(args.trace)
            problems = validate_speedscope(doc)
            if problems:
                raise ValueError(
                    "speedscope export failed validation: "
                    + "; ".join(problems)
                )
            output = _json.dumps(doc, indent=2, sort_keys=True)
        elif args.format == "json":
            output = _json.dumps(profile_trace(args.trace).to_dict(),
                                 indent=2, sort_keys=True)
        else:
            output = profile_trace(args.trace).format(top_k=args.top_k)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {args.trace}: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
        print(f"wrote {args.format} profile to {args.out}")
    else:
        try:
            print(output)
        except BrokenPipeError:
            pass
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    """``history``: list the store (and optionally compact it)."""
    history = RunHistory(args.store)
    try:
        if args.compact is not None:
            dropped = history.compact(keep_last=args.compact)
            print(f"compacted {args.store}: dropped {dropped} record(s)")
        print(format_history_report(history, last=args.last,
                                    name=args.name))
    except (OSError, ValueError) as error:
        print(f"error: {args.store}: {error}", file=sys.stderr)
        return EXIT_ERROR
    return 0


def _format_tail_line(record: dict) -> str:
    """One text line per tailed record (snapshots get a digest)."""
    if record.get("schema") != SNAPSHOT_SCHEMA:
        return _json_mod.dumps(record, sort_keys=True)
    series = record.get("series", {})
    parts = [f"[{record.get('seq', '?'):>4}]",
             f"t=+{record.get('uptime_seconds', 0.0):.1f}s"]
    for key in ("fleet.day", "fleet.ticks", "fleet.epochs_published",
                "fleet.max_staleness", "fleet.breakers_open",
                "parallel.tasks", "obs.live.heartbeats"):
        value = series.get(key)
        if value is not None:
            short = key.split(".", 1)[1] if "." in key else key
            text = (f"{value:g}" if isinstance(value, (int, float))
                    else str(value))
            parts.append(f"{short}={text}")
    firing = record.get("alerts", {}).get("firing", [])
    parts.append("alerts=" + (",".join(firing) if firing else "none"))
    for transition in record.get("alerts", {}).get("transitions", []):
        parts.append(f"{transition['alert']}->{transition['state']}")
    return " ".join(parts)


def _format_top(record: dict) -> str:
    """The ``top`` progress board for one snapshot document."""
    series = record.get("series", {})
    heartbeats = record.get("heartbeats", {})
    alerts = record.get("alerts", {})
    lines = [
        f"repro.obs top — source={record.get('source', '?')} "
        f"seq={record.get('seq', '?')} "
        f"uptime={record.get('uptime_seconds', 0.0):.1f}s"
        + (f" run={record['run_id']}" if record.get("run_id") else ""),
        "",
    ]

    def _section(title: str, rows: List[str]) -> None:
        if rows:
            lines.append(title)
            lines.extend(f"  {row}" for row in rows)
            lines.append("")

    fleet_rows = []
    for key in sorted(series):
        if key.startswith("fleet.") and "[" not in key:
            value = series[key]
            text = f"{value:g}" if isinstance(value, (int, float)) else value
            fleet_rows.append(f"{key:32s} {text}")
    _section("fleet", fleet_rows)

    progress_rows = []
    for source in sorted(heartbeats):
        entry = heartbeats[source]
        bits = []
        for key in ("stage", "status"):
            if key in entry:
                bits.append(str(entry[key]))
        done = entry.get("done", entry.get("tasks_done"))
        total = entry.get("total", entry.get("tasks_total"))
        if done is not None:
            bits.append(f"{done}/{total}" if total is not None
                        else str(done))
        bits.append(f"beats={entry.get('beats', 0)}")
        progress_rows.append(f"{source:40s} {' '.join(bits)}")
    _section("progress", progress_rows)

    alert_rows = []
    for name in alerts.get("firing", []):
        alert_rows.append(f"FIRING  {name}")
    for transition in alerts.get("transitions", []):
        alert_rows.append(
            f"{transition['state']:8s}{transition['alert']} "
            f"({transition['series']} {transition['op']} "
            f"{transition['threshold']:g}, value={transition['value']:g})"
        )
    if not alert_rows:
        alert_rows = ["(none firing)"]
    _section("alerts", alert_rows)
    return "\n".join(lines).rstrip("\n")


def _cmd_tail(args: argparse.Namespace) -> int:
    """``tail``: stream snapshot/event records from a live JSONL file."""
    try:
        records = tail_records(args.stream, follow=args.follow,
                               poll=args.interval,
                               max_seconds=args.max_seconds)
        if args.last is not None:
            # Buffer only the existing file, then re-follow the growth.
            existing = list(tail_records(args.stream))
            records = iter(existing[-args.last:]) if not args.follow \
                else _chain_last(existing, args)
        for record in records:
            if args.format == "json":
                print(_json_mod.dumps(record, sort_keys=True), flush=True)
            else:
                print(_format_tail_line(record), flush=True)
    except OSError as error:
        print(f"error: {args.stream}: {error}", file=sys.stderr)
        return EXIT_ERROR
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def _chain_last(existing: List[dict], args: argparse.Namespace):
    """The last N existing records, then live growth of the stream."""
    count = len(existing)
    yield from existing[-args.last:]
    for index, record in enumerate(
            tail_records(args.stream, follow=True, poll=args.interval,
                         max_seconds=args.max_seconds)):
        if index >= count:
            yield record


def _cmd_top(args: argparse.Namespace) -> int:
    """``top``: render the latest snapshot as a progress board."""
    try:
        if not args.follow:
            snapshots = read_snapshots(args.stream)
            if not snapshots:
                print(f"error: {args.stream}: no snapshot records",
                      file=sys.stderr)
                return EXIT_ERROR
            print(_format_top(snapshots[-1]))
            return 0
        shown = False
        for record in tail_records(args.stream, follow=True,
                                   poll=args.interval,
                                   max_seconds=args.max_seconds):
            if record.get("schema") != SNAPSHOT_SCHEMA:
                continue
            if shown:
                print()
            print(_format_top(record), flush=True)
            shown = True
        if not shown:
            print(f"error: {args.stream}: no snapshot records",
                  file=sys.stderr)
            return EXIT_ERROR
    except OSError as error:
        print(f"error: {args.stream}: {error}", file=sys.stderr)
        return EXIT_ERROR
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code (see module docstring)."""
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "history":
        return _cmd_history(args)
    if args.command == "tail":
        return _cmd_tail(args)
    if args.command == "top":
        return _cmd_top(args)
    return EXIT_ERROR  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
