"""Command-line entry point: ``python -m repro.obs report <file>``.

Renders any obs artefact — a v1/v2 trace, a trace collection, a metrics
snapshot, or a run manifest — as a span tree and top-k counters table
(traces) or the matching summary table.  Multiple files render in
sequence::

    PYTHONPATH=src python -m repro.obs report results/fig5_trace.json
    PYTHONPATH=src python -m repro.obs report run/*_manifest.json --top-k 20
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .report import DEFAULT_TOP_K, report


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro observability artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report",
        help="render a trace / metrics snapshot / manifest as text",
    )
    rep.add_argument("files", nargs="+",
                     help="artefact JSON file(s) to render")
    rep.add_argument("--top-k", type=int, default=DEFAULT_TOP_K,
                     help="counters shown in the top-counters table "
                          f"(default {DEFAULT_TOP_K})")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "report":
        blocks = []
        for path in args.files:
            try:
                blocks.append(report(path, top_k=args.top_k))
            except (OSError, ValueError, KeyError) as error:
                print(f"error: {path}: {error}", file=sys.stderr)
                return 1
        try:
            print("\n\n".join(blocks))
        except BrokenPipeError:
            pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
