"""repro.obs — the unified observability layer.

One telemetry spine for the whole reproduction (traces, metrics, events,
manifests), replacing the fragmented instrumentation that grew across
PR 1 (pipeline trace spans) and PR 2 (``parallel.*`` counters and
hand-rolled benchmark JSON).  Four pillars:

* **Spans** (:mod:`repro.obs.trace`): :func:`span` opens a nested
  wall-time span on a thread-local stack; independently-instrumented
  layers compose into one tree.  Serializes as ``repro.obs.trace/v2``;
  :func:`read_trace` also accepts the v1 ``repro.pipeline.trace`` schema.
* **Metrics** (:mod:`repro.obs.registry`): a process-wide
  :class:`MetricsRegistry` of counters, gauges, and histograms with
  stable dotted names; snapshot/diff/merge lets worker-process deltas
  flow back through :mod:`repro.parallel`.
* **Events** (:mod:`repro.obs.events`): structured JSON-lines records
  with run IDs and device fingerprints via :func:`log_event`, captured
  by an installed :class:`EventLog` sink.
* **Manifests** (:mod:`repro.obs.manifest`): per-run
  ``repro.obs.manifest/v1`` documents pinning config, seeds, worker
  count, and git SHA.

:class:`Session` ties all four together around one run, and
``python -m repro.obs report <file>`` renders any artefact as text.

On top of those sit the continuous-regression pillars (this layer is why
one run's artefacts are comparable with the next's):

* **History** (:mod:`repro.obs.history`): an append-only JSON-lines run
  store (``repro.obs.history/v1``) of per-run summary records keyed by
  run ID + git SHA, with query helpers and retention compaction.
* **Diff** (:mod:`repro.obs.diff`): a noise-aware comparator (median ±
  MAD window thresholds) classifying each series as improved / regressed
  / unchanged; powers ``python -m repro.obs diff`` and its ``--gate``.
* **Profile** (:mod:`repro.obs.profile`): deterministic self/total span
  attribution with collapsed-stack and speedscope exports, plus fan-out
  skew statistics from the per-task histograms.
* **Scorecards** (:mod:`repro.obs.scorecard`): domain-quality records —
  crosstalk-pair detection recall/precision, drift-tracking lag, and
  scheduler serialization audits — that diff and gate like any series.

Finally, the **live plane** (:mod:`repro.obs.live`) streams all of the
above in real time for long-running runs: a :class:`TelemetryBus` tees
events and span closes to bounded subscriber rings, a
:class:`SnapshotPublisher` samples the registry into versioned
``repro.obs.snapshot/v1`` documents (merged with worker heartbeats), an
:class:`AlertEngine` evaluates declarative threshold + sustain rules per
snapshot with a firing/resolved lifecycle, and stdlib exporters render
Prometheus text format and tail-able snapshot JSONL
(``python -m repro.obs tail --follow`` / ``top``).  Everything in the
live plane is a side-channel observer: seeded results are bitwise
identical with it on or off.

See ``docs/observability.md`` for the metric/span name registry and
schemas.
"""

from .diff import (
    DIFF_SCHEMA,
    DiffThresholds,
    RunDiff,
    SeriesDiff,
    diff_records,
    diff_series,
    direction_of,
    format_diff,
)
from .events import (
    EVENTS_SCHEMA,
    EventLog,
    event_sink,
    install_sink,
    log_event,
    read_events,
    remove_sink,
)
from .history import (
    HISTORY_SCHEMA,
    RunHistory,
    RunRecord,
    flatten_numeric,
    load_run_record,
    summarize_manifest,
    summarize_metrics,
    summarize_trace,
)
from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    environment_info,
    git_revision,
    new_run_id,
    read_manifest,
    write_manifest,
)
from .registry import (
    METRICS_SCHEMA,
    Counter,
    DeltaWindow,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_snapshot,
    push_registry,
    set_registry,
)
from .profile import (
    PROFILE_SCHEMA,
    SpanStat,
    TraceProfile,
    collapsed_stacks,
    fanout_skew,
    histogram_percentile,
    profile_trace,
    speedscope_document,
    validate_speedscope,
)
from .report import load_report_document, report
from .scorecard import (
    SCORECARD_SCHEMA,
    DetectionQuality,
    DriftDay,
    Scorecard,
    campaign_scorecard,
    detection_quality,
    drift_scorecard,
    fleet_scorecard,
    schedule_audit_scorecard,
)
from .session import Session
from .trace import (
    TRACE_COLLECTION_SCHEMA,
    TRACE_COLLECTION_SCHEMA_V1,
    TRACE_SCHEMA,
    TRACE_SCHEMA_V1,
    PassSpan,
    PipelineTrace,
    Span,
    SpanRecorder,
    Trace,
    TraceCollector,
    add_span_observer,
    current_span,
    emit_trace,
    read_trace,
    read_traces,
    remove_span_observer,
    span,
)
from .live import (
    SNAPSHOT_SCHEMA,
    AlertEngine,
    AlertRule,
    BusEventSink,
    HeartbeatBoard,
    LivePlane,
    SnapshotPublisher,
    SnapshotWriter,
    TelemetryBus,
    build_series,
    default_fleet_rules,
    get_plane,
    heartbeat,
    heartbeat_step,
    heartbeats_active,
    live_plane,
    prometheus_exposition,
    read_snapshots,
    tail_records,
    validate_exposition,
    write_prometheus,
)

__all__ = [
    # trace
    "TRACE_SCHEMA", "TRACE_SCHEMA_V1",
    "TRACE_COLLECTION_SCHEMA", "TRACE_COLLECTION_SCHEMA_V1",
    "Span", "PassSpan", "Trace", "PipelineTrace",
    "SpanRecorder", "TraceCollector",
    "span", "current_span", "emit_trace", "read_trace", "read_traces",
    "add_span_observer", "remove_span_observer",
    # registry
    "METRICS_SCHEMA", "Counter", "DeltaWindow", "Gauge", "Histogram",
    "MetricsRegistry",
    "get_registry", "set_registry", "push_registry", "metrics_snapshot",
    # events
    "EVENTS_SCHEMA", "EventLog", "event_sink", "install_sink",
    "remove_sink", "log_event", "read_events",
    # manifest
    "MANIFEST_SCHEMA", "RunManifest", "new_run_id", "git_revision",
    "environment_info", "write_manifest", "read_manifest",
    # history
    "HISTORY_SCHEMA", "RunHistory", "RunRecord", "flatten_numeric",
    "load_run_record", "summarize_manifest", "summarize_metrics",
    "summarize_trace",
    # diff
    "DIFF_SCHEMA", "DiffThresholds", "RunDiff", "SeriesDiff",
    "diff_records", "diff_series", "direction_of", "format_diff",
    # profile
    "PROFILE_SCHEMA", "SpanStat", "TraceProfile", "profile_trace",
    "collapsed_stacks", "speedscope_document", "validate_speedscope",
    "histogram_percentile", "fanout_skew",
    # scorecard
    "SCORECARD_SCHEMA", "DetectionQuality", "DriftDay", "Scorecard",
    "detection_quality", "campaign_scorecard", "drift_scorecard",
    "fleet_scorecard", "schedule_audit_scorecard",
    # session / reporting
    "Session", "report", "load_report_document",
    # live plane
    "SNAPSHOT_SCHEMA", "TelemetryBus", "BusEventSink", "HeartbeatBoard",
    "SnapshotPublisher", "SnapshotWriter", "AlertRule", "AlertEngine",
    "LivePlane", "live_plane", "get_plane", "default_fleet_rules",
    "heartbeat", "heartbeat_step", "heartbeats_active",
    "build_series", "read_snapshots", "tail_records",
    "prometheus_exposition", "write_prometheus", "validate_exposition",
]
