"""Nested wall-time spans and the ``repro.obs.trace/v2`` JSON schema.

This module is the trace core of the unified observability layer.  It
subsumes the original per-pass instrumentation of ``repro.pipeline.trace``
(which now re-exports everything from here): every structure that existed
in v1 — :class:`PassSpan`, :class:`PipelineTrace`, :class:`SpanRecorder`,
:class:`TraceCollector` — keeps its name and API, and two things are new:

* **Nesting.**  Spans form a tree.  A thread-local *span stack* tracks the
  currently-open span; :func:`span` (and therefore every
  :meth:`SpanRecorder.span` block) attaches the finished record as a child
  of whatever span encloses it.  The parallel engine, the SMT solver, and
  the noisy backend open spans of their own, so a campaign or compile run
  produces one tree covering pipeline passes, per-map parallel task
  timing, and solver time.
* **Schema v2.**  Traces serialize as ``repro.obs.trace/v2``: top-level key
  ``name`` (v1: ``pipeline``), span lists under ``spans`` (v1: flat
  ``passes``), each span carrying its own nested ``spans``, and optional
  ``run_id`` / ``meta``.  :func:`read_trace` is the compat reader — it
  accepts both v1 and v2 documents (and either collection schema) and
  returns live :class:`Trace` objects.

This module deliberately imports nothing from the rest of :mod:`repro` so
any layer (core, rb, smt, transpiler, experiments) can record spans
without creating an import cycle.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

#: Schema identifier stamped into every exported trace document.
TRACE_SCHEMA = "repro.obs.trace/v2"

#: Schema identifier for a collection of traces (one benchmark driver run).
TRACE_COLLECTION_SCHEMA = "repro.obs.trace-collection/v2"

#: The schemas this package's reader accepts for single traces.
TRACE_SCHEMA_V1 = "repro.pipeline.trace/v1"

#: The schemas this package's reader accepts for trace collections.
TRACE_COLLECTION_SCHEMA_V1 = "repro.pipeline.trace-collection/v1"


@dataclass
class Span:
    """One timed region: wall time, counters, and child spans."""

    name: str
    seconds: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def add(self, counter: str, value: float = 1.0) -> None:
        """Accumulate ``value`` onto one counter."""
        self.counters[counter] = self.counters.get(counter, 0.0) + value

    def add_counters(self, counters: Dict[str, float]) -> None:
        """Accumulate a whole counter dict into this span.

        Used when a span fans work out to parallel tasks that each return
        their own counter dict (e.g. per-experiment ``rb.*`` counters): the
        span sums the contributions rather than overwriting them.
        """
        for name, value in counters.items():
            self.add(name, value)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_counters(self) -> Dict[str, float]:
        """Counters summed over this span and every descendant."""
        totals: Dict[str, float] = {}
        for node in self.walk():
            for name, value in node.counters.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def to_dict(self) -> dict:
        """The span as a ``repro.obs.trace/v2`` span object."""
        doc = {
            "name": self.name,
            "seconds": self.seconds,
            "counters": dict(self.counters),
        }
        if self.children:
            doc["spans"] = [child.to_dict() for child in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        """Rebuild a span (v1 pass objects have no ``spans`` key)."""
        return cls(
            name=doc["name"],
            seconds=float(doc.get("seconds", 0.0)),
            counters={k: float(v) for k, v in doc.get("counters", {}).items()},
            children=[cls.from_dict(c) for c in doc.get("spans", [])],
        )


#: Historical name: one pipeline pass's record.  Same class — spans from
#: the pass pipeline and spans from anywhere else are interchangeable.
PassSpan = Span


@dataclass
class Trace:
    """An ordered tree of every span one run recorded.

    ``pipeline`` is the root name (the v1 field name is kept so existing
    callers — and the ``compile[...]`` / ``characterize[...]`` naming
    convention — carry over; ``name`` aliases it).  ``run_id`` and ``meta``
    are optional v2 additions: a session id and free-form metadata such as
    the device fingerprint.
    """

    pipeline: str
    spans: List[Span] = field(default_factory=list)
    run_id: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """v2 name of the trace root (aliases the v1 ``pipeline`` field)."""
        return self.pipeline

    @property
    def total_seconds(self) -> float:
        """Summed wall time of the top-level spans (children are within)."""
        return sum(span.seconds for span in self.spans)

    @property
    def pass_names(self) -> List[str]:
        """Top-level span names, in execution order."""
        return [span.name for span in self.spans]

    def walk(self) -> Iterator[Span]:
        """Every span in the tree, depth first."""
        for span in self.spans:
            yield from span.walk()

    def counters(self) -> Dict[str, float]:
        """Counters summed across every span in the tree."""
        totals: Dict[str, float] = {}
        for span in self.walk():
            for name, value in span.counters.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def counter(self, name: str, default: float = 0.0) -> float:
        """One summed counter (see :meth:`counters`)."""
        return self.counters().get(name, default)

    def span(self, name: str) -> Span:
        """The first span (anywhere in the tree) with ``name``."""
        for s in self.walk():
            if s.name == name:
                return s
        raise KeyError(f"no span named {name!r} in trace {self.pipeline!r}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The trace as a ``repro.obs.trace/v2`` document."""
        doc = {
            "schema": TRACE_SCHEMA,
            "name": self.pipeline,
            "total_seconds": self.total_seconds,
            "counters": self.counters(),
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.run_id is not None:
            doc["run_id"] = self.run_id
        if self.meta:
            doc["meta"] = dict(self.meta)
        return doc

    def to_json(self, indent: Optional[int] = None) -> str:
        """The v2 document as JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    def format(self) -> str:
        """A human-readable span-tree table (used by the examples)."""
        lines = [f"trace {self.pipeline!r}: "
                 f"{self.total_seconds * 1e3:.1f} ms total"]
        if self.run_id:
            lines[0] += f"  (run {self.run_id})"

        def emit(span: Span, depth: int) -> None:
            pad = "  " * (depth + 1)
            lines.append(f"{pad}{span.name:24s} {span.seconds * 1e3:9.2f} ms")
            for counter in sorted(span.counters):
                value = span.counters[counter]
                lines.append(f"{pad}  {counter:30s} {value:>10g}")
            for child in span.children:
                emit(child, depth + 1)

        for span in self.spans:
            emit(span, 0)
        return "\n".join(lines)

    @classmethod
    def from_dict(cls, doc: dict) -> "Trace":
        """Rebuild a trace from a v1 **or** v2 document (compat reader)."""
        schema = doc.get("schema")
        if schema == TRACE_SCHEMA_V1:
            spans = [Span.from_dict(p) for p in doc.get("passes", [])]
            return cls(pipeline=doc["pipeline"], spans=spans)
        if schema == TRACE_SCHEMA:
            spans = [Span.from_dict(s) for s in doc.get("spans", [])]
            return cls(
                pipeline=doc["name"],
                spans=spans,
                run_id=doc.get("run_id"),
                meta=dict(doc.get("meta", {})),
            )
        raise ValueError(f"not a trace document (schema={schema!r})")


#: Historical name for :class:`Trace`.
PipelineTrace = Trace


# ----------------------------------------------------------------------
# the thread-local span stack
# ----------------------------------------------------------------------
_STACK = threading.local()


def _stack() -> List[Span]:
    try:
        return _STACK.spans
    except AttributeError:
        _STACK.spans = []
        return _STACK.spans


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


#: Callables invoked with every closed :class:`Span` (live telemetry
#: tees).  Observer errors are swallowed — observation must never break
#: the observed run.
_SPAN_OBSERVERS: List[Callable[["Span"], None]] = []


def add_span_observer(observer: Callable[["Span"], None]) -> None:
    """Start invoking ``observer(span)`` on every span close."""
    _SPAN_OBSERVERS.append(observer)


def remove_span_observer(observer: Callable[["Span"], None]) -> None:
    """Stop invoking ``observer`` (no-op if not installed)."""
    if observer in _SPAN_OBSERVERS:
        _SPAN_OBSERVERS.remove(observer)


@contextmanager
def span(name: str) -> Iterator[Span]:
    """Open a nested wall-time span.

    The yielded :class:`Span` accepts counters (``record.add(...)`` or
    ``record.counters[...] = ...``).  On exit the span's wall time is
    stamped and the record attaches itself as a child of the enclosing
    span, if any — so independently-instrumented layers (pipeline passes,
    the parallel engine, the SMT solver) compose into one tree without
    knowing about each other.  With no enclosing span the record simply
    floats free; use a :class:`SpanRecorder` or
    :class:`~repro.obs.session.Session` to root a tree.  Closed spans are
    also handed to any registered span observers (the live telemetry
    tee); observers may not mutate the record.
    """
    record = Span(name=name)
    stack = _stack()
    stack.append(record)
    started = time.perf_counter()
    try:
        yield record
    finally:
        record.seconds = time.perf_counter() - started
        stack.pop()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(record)
        if _SPAN_OBSERVERS:
            for observer in list(_SPAN_OBSERVERS):
                try:
                    observer(record)
                except Exception:
                    pass


class SpanRecorder:
    """Builds a :class:`Trace` span by span.

    Used by the :class:`~repro.pipeline.runner.Pipeline` runner and
    directly by stages that are not circuit passes (the characterization
    campaign, tomography).  Recorder spans participate in the global span
    stack: anything that opens spans inside a recorder block nests under
    it, and the recorder's own spans nest under any enclosing span (a
    :class:`~repro.obs.session.Session` root, for instance) while *also*
    landing in the recorder's trace.
    """

    def __init__(self, pipeline: str):
        self.trace = Trace(pipeline=pipeline)

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """One top-level span of this recorder's trace (may nest freely)."""
        record: Optional[Span] = None
        try:
            with span(name) as record:
                yield record
        finally:
            if record is not None:
                self.trace.spans.append(record)

    def finish(self) -> Trace:
        """Emit the finished trace to any active collector and return it."""
        emit_trace(self.trace)
        return self.trace


# ----------------------------------------------------------------------
# trace collection
# ----------------------------------------------------------------------
_ACTIVE_COLLECTORS: List["TraceCollector"] = []


def emit_trace(trace: Trace) -> None:
    """Hand a finished trace to every active :class:`TraceCollector`."""
    for collector in _ACTIVE_COLLECTORS:
        collector.add(trace)


class TraceCollector:
    """Context manager that gathers every trace emitted while active.

    Nested collectors all receive every trace.  The aggregated document the
    benchmarks archive contains each individual trace plus fleet-wide
    counter totals::

        with TraceCollector() as traces:
            run_fig5(...)
        path.write_text(traces.to_json(indent=2))

    Note that with nested spans, a campaign trace emitted *inside* a
    session span overlaps the session's root trace; collection totals sum
    over traces as emitted and may double-count overlapping trees.
    """

    def __init__(self) -> None:
        self.traces: List[Trace] = []

    def __enter__(self) -> "TraceCollector":
        _ACTIVE_COLLECTORS.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _ACTIVE_COLLECTORS.remove(self)

    def add(self, trace: Trace) -> None:
        """Record one emitted trace (called by :func:`emit_trace`)."""
        self.traces.append(trace)

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def total_seconds(self) -> float:
        """Wall time summed over every collected trace."""
        return sum(t.total_seconds for t in self.traces)

    def counters(self) -> Dict[str, float]:
        """Counters summed across every collected trace."""
        totals: Dict[str, float] = {}
        for trace in self.traces:
            for name, value in trace.counters().items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def to_dict(self) -> dict:
        """The collection as a ``repro.obs.trace-collection/v2`` doc."""
        return {
            "schema": TRACE_COLLECTION_SCHEMA,
            "num_traces": len(self.traces),
            "total_seconds": self.total_seconds,
            "counters": self.counters(),
            "traces": [trace.to_dict() for trace in self.traces],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The collection document as JSON text."""
        return json.dumps(self.to_dict(), indent=indent)


# ----------------------------------------------------------------------
# the v1/v2 compat reader
# ----------------------------------------------------------------------
def read_trace(source: Union[str, dict]) -> Trace:
    """Read one trace from a v1 or v2 document (dict, JSON text, or path).

    Accepts ``repro.pipeline.trace/v1`` and ``repro.obs.trace/v2``
    documents.  For collections use :func:`read_traces`.
    """
    doc = _load_document(source)
    return Trace.from_dict(doc)


def read_traces(source: Union[str, dict]) -> List[Trace]:
    """Read every trace in a document: a single trace (v1 or v2) yields a
    one-element list; a trace collection (either version) yields all of its
    traces."""
    doc = _load_document(source)
    schema = doc.get("schema")
    if schema in (TRACE_COLLECTION_SCHEMA, TRACE_COLLECTION_SCHEMA_V1):
        return [Trace.from_dict(t) for t in doc.get("traces", [])]
    return [Trace.from_dict(doc)]


def _load_document(source: Union[str, dict]) -> dict:
    """Dict → itself; JSON text → parsed; anything else → path to read."""
    if isinstance(source, dict):
        return source
    text = str(source)
    if text.lstrip().startswith("{"):
        return json.loads(text)
    with open(text, "r", encoding="utf-8") as handle:
        return json.load(handle)
