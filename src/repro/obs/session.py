"""Sessions: one context manager that captures a run's full telemetry.

A :class:`Session` is the front door of :mod:`repro.obs`.  Entering one

* mints a run ID and opens a **root span** on the thread-local span
  stack, so every span any layer opens inside the block (pipeline
  passes, parallel maps, SMT solves, backend trajectory chunks) nests
  into one tree;
* opens a :class:`~repro.obs.registry.DeltaWindow` over the process-wide
  :class:`~repro.obs.registry.MetricsRegistry` so the session can report
  the **metric deltas** its block produced (with exact per-window
  histogram min/max);
* installs an :class:`~repro.obs.events.EventLog` sink stamped with the
  run ID, so :func:`~repro.obs.events.log_event` calls are captured;
* collects every trace emitted inside the block (a
  :class:`~repro.obs.trace.TraceCollector` is active throughout).

On exit the root span closes and the session exposes the four artefact
documents — ``trace`` (v2), ``metrics`` (delta snapshot), ``events``,
and a :class:`~repro.obs.manifest.RunManifest` — plus :meth:`write`,
which drops all four next to each other in an output directory::

    with Session("fig5_campaign", config={"policy": "one_hop"}) as session:
        report = campaign.run(policy)
        session.results["epsilon_ct"] = report.max_conditional_error
    session.write("results/")          # fig5_campaign_trace.json, ...
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from .events import EventLog, install_sink, remove_sink
from .manifest import RunManifest, environment_info, git_revision, new_run_id
from .registry import DeltaWindow, get_registry
from .trace import Span, Trace, TraceCollector, _stack, emit_trace


class Session:
    """Capture one run's trace, metrics, events, and manifest.

    Parameters
    ----------
    name:
        Root span / artefact base name (``fig5_campaign``).
    config:
        JSON-serializable run configuration, recorded in the manifest.
    seeds:
        The seeds feeding the run's RNG streams, recorded in the manifest.
    workers:
        Resolved parallel worker count, recorded in the manifest.
    meta:
        Free-form metadata attached to the trace document (device
        fingerprints, policy names).
    history:
        Optional path to (or :class:`~repro.obs.history.RunHistory` over)
        an append-only run store; when set, :meth:`write` also appends a
        summary record (see :meth:`append_history`).
    """

    def __init__(self, name: str,
                 config: Optional[dict] = None,
                 seeds: Optional[dict] = None,
                 workers: Optional[int] = None,
                 meta: Optional[dict] = None,
                 history=None):
        self.name = name
        self.history = history
        self.run_id = new_run_id()
        self.config = dict(config or {})
        self.seeds = dict(seeds or {})
        self.workers = workers
        self.meta = dict(meta or {})
        #: Headline numbers the caller wants pinned in the manifest.
        self.results: Dict[str, Any] = {}
        #: Whole documents (e.g. a scorecard) embedded in the history
        #: record so they round-trip through the store.
        self.documents: Dict[str, Any] = {}

        self._root = Span(name=name)
        self._started: Optional[float] = None
        self._window: Optional[DeltaWindow] = None
        self._collector = TraceCollector()
        self.event_log = EventLog(run_id=self.run_id)

        self.trace: Optional[Trace] = None
        self.metrics: Optional[dict] = None
        self.manifest: Optional[RunManifest] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "Session":
        # A DeltaWindow (not a bare snapshot pair) so the session's
        # histogram deltas carry exact per-window min/max.
        self._window = get_registry().delta_window()
        self._collector.__enter__()
        install_sink(self.event_log)
        _stack().append(self._root)
        self._started = time.perf_counter()
        self.event_log.log("session.start", name=self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._root.seconds = time.perf_counter() - self._started
        stack = _stack()
        if stack and stack[-1] is self._root:
            stack.pop()
        self.event_log.log(
            "session.end", name=self.name,
            seconds=self._root.seconds,
            error=repr(exc) if exc is not None else None,
        )
        remove_sink(self.event_log)
        self._collector.__exit__(exc_type, exc, tb)

        self.metrics = self._window.delta()
        self._window.close()
        self.trace = Trace(
            pipeline=self.name,
            spans=[self._root],
            run_id=self.run_id,
            meta=dict(self.meta),
        )
        self.manifest = RunManifest(
            run_id=self.run_id,
            name=self.name,
            config=self.config,
            seeds=self.seeds,
            workers=self.workers,
            git=git_revision(),
            environment=environment_info(),
            results=dict(self.results),
        )
        emit_trace(self.trace)

    # ------------------------------------------------------------------
    @property
    def root(self) -> Span:
        """The session's root span (open while the session is active)."""
        return self._root

    @property
    def collected_traces(self) -> List[Trace]:
        """Every trace emitted inside the session block (campaign and
        compile traces, in addition to the session's own tree)."""
        return self._collector.traces

    def write(self, directory: str) -> Dict[str, str]:
        """Write the four artefacts into ``directory``.

        Files are named ``{name}_trace.json``, ``{name}_metrics.json``,
        ``{name}_manifest.json``, and ``{name}_events.jsonl``.  Returns a
        dict mapping artefact kind to the written path.  Only valid after
        the session has exited.
        """
        if self.trace is None:
            raise RuntimeError("session has not finished; nothing to write")
        os.makedirs(directory, exist_ok=True)
        paths = {
            "trace": os.path.join(directory, f"{self.name}_trace.json"),
            "metrics": os.path.join(directory, f"{self.name}_metrics.json"),
            "manifest": os.path.join(directory, f"{self.name}_manifest.json"),
            "events": os.path.join(directory, f"{self.name}_events.jsonl"),
        }
        with open(paths["trace"], "w", encoding="utf-8") as handle:
            handle.write(self.trace.to_json(indent=2))
            handle.write("\n")
        import json as _json
        with open(paths["metrics"], "w", encoding="utf-8") as handle:
            _json.dump(self.metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        # refresh the manifest's results in case the caller added headline
        # numbers after __exit__
        self.manifest.results = dict(self.results)
        with open(paths["manifest"], "w", encoding="utf-8") as handle:
            handle.write(self.manifest.to_json(indent=2))
            handle.write("\n")
        self.event_log.write(paths["events"])
        if self.history is not None:
            self.append_history(self.history)
        return paths

    def append_history(self, history) -> "RunRecord":
        """Append this run's summary record to a history store.

        ``history`` is a store path or a
        :class:`~repro.obs.history.RunHistory`.  The record carries the
        manifest's ``results.*`` series, the metric-delta summary, the
        trace's top-level span times, and any :attr:`documents`.  Only
        valid after the session has exited.
        """
        from .history import RunHistory, RunRecord

        if self.trace is None:
            raise RuntimeError("session has not finished; nothing to append")
        if not isinstance(history, RunHistory):
            history = RunHistory(history)
        self.manifest.results = dict(self.results)
        record = RunRecord.from_artifacts(
            manifest=self.manifest.to_dict(),
            metrics=self.metrics,
            trace=self.trace,
            documents=self.documents,
        )
        return history.append(record)
