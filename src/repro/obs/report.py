"""Render any obs artefact for humans (or, via ``--format json``, tools).

Backs the ``python -m repro.obs report`` CLI: given a trace file (v1 or
v2, single trace or collection), prints each trace's span tree with wall
times and a top-k table of its counters; metrics snapshots, manifests,
diff documents, profiles, scorecards, single history records, and whole
``.jsonl`` history stores each get their matching table.  All functions
return strings so tests and notebooks can use them directly;
:func:`load_report_document` is the machine-readable side — it resolves a
source to its canonical JSON document for ``--format json``.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from .diff import DIFF_SCHEMA, format_diff_report
from .history import (HISTORY_SCHEMA, RunHistory, RunRecord,
                      format_history_report)
from .manifest import MANIFEST_SCHEMA, RunManifest
from .profile import PROFILE_SCHEMA, format_profile_report
from .registry import METRICS_SCHEMA
from .scorecard import SCORECARD_SCHEMA, format_scorecard_report
from .trace import Span, Trace, _load_document, read_traces

#: Number of counters shown in the "top counters" table by default.
DEFAULT_TOP_K = 12


def format_span_tree(trace: Trace) -> str:
    """The trace as an indented span tree with per-span wall times."""
    lines = [f"trace {trace.name!r}"
             + (f"  (run {trace.run_id})" if trace.run_id else "")]
    if trace.meta:
        for key in sorted(trace.meta):
            lines.append(f"  meta {key} = {trace.meta[key]}")
    total = trace.total_seconds or 1e-12

    def emit(node: Span, prefix: str, is_last: bool) -> None:
        branch = "└─ " if is_last else "├─ "
        share = 100.0 * node.seconds / total
        lines.append(
            f"{prefix}{branch}{node.name:<28s} "
            f"{node.seconds * 1e3:9.2f} ms  {share:5.1f}%"
        )
        extension = "   " if is_last else "│  "
        for i, child in enumerate(node.children):
            emit(child, prefix + extension, i == len(node.children) - 1)

    for i, node in enumerate(trace.spans):
        emit(node, "", i == len(trace.spans) - 1)
    lines.append(f"total {trace.total_seconds * 1e3:.2f} ms "
                 f"across {sum(1 for _ in trace.walk())} spans")
    return "\n".join(lines)


def format_top_counters(trace: Trace, top_k: int = DEFAULT_TOP_K) -> str:
    """The trace's summed counters, largest first, as a two-column table."""
    counters = trace.counters()
    if not counters:
        return "(no counters recorded)"
    ranked = sorted(counters.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
    shown = ranked[:top_k]
    width = max(len(name) for name, _ in shown)
    lines = [f"top {len(shown)} of {len(ranked)} counters:"]
    for name, value in shown:
        lines.append(f"  {name:<{width}s}  {value:>14g}")
    return "\n".join(lines)


def format_trace_report(source, top_k: int = DEFAULT_TOP_K) -> str:
    """Full report for a trace document: span tree + top-k counters per
    trace (collections render each trace in sequence)."""
    traces = read_traces(source)
    blocks: List[str] = []
    for trace in traces:
        blocks.append(format_span_tree(trace))
        blocks.append(format_top_counters(trace, top_k=top_k))
    return "\n\n".join(blocks)


def format_metrics_report(doc: dict, top_k: int = DEFAULT_TOP_K) -> str:
    """Human-readable tables for a ``repro.obs.metrics/v1`` snapshot."""
    lines: List[str] = []
    counters = doc.get("counters", {})
    if counters:
        ranked = sorted(counters.items(),
                        key=lambda kv: (-abs(kv[1]), kv[0]))[:top_k]
        width = max(len(n) for n, _ in ranked)
        lines.append(f"counters (top {len(ranked)} of {len(counters)}):")
        for name, value in ranked:
            lines.append(f"  {name:<{width}s}  {value:>14g}")
    gauges = doc.get("gauges", {})
    if gauges:
        width = max(len(n) for n in gauges)
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}s}  {gauges[name]:>14g}")
    histograms = doc.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist.get("count", 0)
            mean = hist["sum"] / count if count else 0.0
            lines.append(
                f"  {name}: n={count} mean={mean:g} "
                f"min={hist.get('min')} max={hist.get('max')}"
            )
    return "\n".join(lines) if lines else "(empty metrics snapshot)"


def format_manifest_report(manifest: RunManifest) -> str:
    """A one-screen summary of a run manifest."""
    lines = [f"run {manifest.run_id}"
             + (f"  ({manifest.name})" if manifest.name else ""),
             f"  created_at: {manifest.created_at}"]
    if manifest.git:
        sha = manifest.git.get("sha", "?")
        dirty = " (dirty)" if manifest.git.get("dirty") else ""
        lines.append(f"  git: {sha}{dirty}")
    if manifest.workers is not None:
        lines.append(f"  workers: {manifest.workers}")
    for label, mapping in (("config", manifest.config),
                           ("seeds", manifest.seeds),
                           ("environment", manifest.environment),
                           ("results", manifest.results)):
        if mapping:
            lines.append(f"  {label}:")
            for key in sorted(mapping):
                lines.append(f"    {key}: {mapping[key]}")
    return "\n".join(lines)


def format_record_report(record: RunRecord) -> str:
    """A one-screen summary of a single history record."""
    sha = (record.git_sha or "?")[:10]
    dirty = "*" if record.git_dirty else ""
    lines = [f"run {record.run_id}  ({record.name})  git {sha}{dirty}"]
    if record.series:
        width = max(len(n) for n in record.series)
        for name in sorted(record.series):
            lines.append(f"  {name:<{width}s}  {record.series[name]:>14g}")
    if record.documents:
        lines.append(f"  documents: {', '.join(sorted(record.documents))}")
    return "\n".join(lines)


def report(source, top_k: int = DEFAULT_TOP_K) -> str:
    """Render any obs artefact (trace, collection, metrics snapshot,
    manifest, diff, profile, scorecard, history record, or ``.jsonl``
    history store — dict, JSON text, or path) as human-readable text."""
    if isinstance(source, str) and source.endswith(".jsonl"):
        return format_history_report(RunHistory(source))
    doc = _load_document(source)
    schema: Optional[str] = doc.get("schema")
    if schema == METRICS_SCHEMA:
        return format_metrics_report(doc, top_k=top_k)
    if schema == MANIFEST_SCHEMA:
        return format_manifest_report(RunManifest.from_dict(doc))
    if schema == DIFF_SCHEMA:
        return format_diff_report(doc)
    if schema == PROFILE_SCHEMA:
        return format_profile_report(doc)
    if schema == SCORECARD_SCHEMA:
        return format_scorecard_report(doc)
    if schema == HISTORY_SCHEMA:
        return format_record_report(RunRecord.from_dict(doc))
    return format_trace_report(doc, top_k=top_k)


def load_report_document(source) -> dict:
    """The canonical JSON document behind a report source.

    For ordinary artefacts this is the parsed document itself; a
    ``.jsonl`` history store resolves to a wrapper listing its records.
    Used by ``python -m repro.obs report --format json``.
    """
    if isinstance(source, str) and source.endswith(".jsonl"):
        history = RunHistory(source)
        return {
            "schema": HISTORY_SCHEMA,
            "store": history.path,
            "records": [r.to_dict() for r in history.records()],
            "corrupt_lines": history.corrupt_lines,
        }
    doc = _load_document(source)
    if "schema" not in doc:
        raise ValueError("document has no 'schema' key")
    return doc


def report_json(sources: List) -> str:
    """Many sources as one JSON array document (stable key order)."""
    return json.dumps([load_report_document(s) for s in sources],
                      indent=2, sort_keys=True)
