"""Append-only run history: the longitudinal store behind run diffing.

The paper's methodology is longitudinal — crosstalk is re-characterized
daily and the interesting claims (Figure 4) are about *stability across
runs* — so the reproduction keeps the same discipline about itself: every
session or benchmark run can append a compact summary record to a
JSON-lines *history store* (schema ``repro.obs.history/v1``), and
:mod:`repro.obs.diff` compares a fresh run against that history to decide
whether anything regressed.

One record per line::

    {"schema": "repro.obs.history/v1", "run_id": "2408c5944464",
     "name": "bench_perf_baseline", "created_at": "…",
     "git": {"sha": "…", "dirty": false}, "workers": 4,
     "series": {"results.workloads.tomography.speedup": 0.99, …},
     "documents": {"scorecard": {…}}}

``series`` is a flat ``name → float`` map — the comparable surface of the
run.  :func:`summarize_manifest`, :func:`summarize_metrics`, and
:func:`summarize_trace` extract it from the standard artefact documents;
``documents`` optionally embeds whole artefacts (a scorecard, say) that
should round-trip through the store.

:class:`RunHistory` is the store: ``append`` adds one record (atomic,
append-only), ``records``/``query``/``last`` read it back (corrupt lines
are skipped, never fatal), and ``compact`` applies retention — keep the
most recent *N* records per run name, rewrite atomically.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from .manifest import MANIFEST_SCHEMA
from .registry import METRICS_SCHEMA
from .trace import TRACE_SCHEMA, TRACE_SCHEMA_V1, Trace, read_trace

#: Schema identifier stamped into every history record.
HISTORY_SCHEMA = "repro.obs.history/v1"


def flatten_numeric(doc: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten the numeric leaves of a nested dict into dotted series names.

    Booleans become 0.0/1.0 (they are still comparable run-over-run);
    strings, lists, and ``None`` leaves are dropped.
    """
    out: Dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value, path))
    elif isinstance(doc, bool):
        if prefix:
            out[prefix] = 1.0 if doc else 0.0
    elif isinstance(doc, (int, float)):
        if prefix:
            out[prefix] = float(doc)
    return out


def summarize_manifest(doc: dict) -> Dict[str, float]:
    """The comparable series of a ``repro.obs.manifest/v1`` document.

    Numeric leaves of ``results`` keep a ``results.`` prefix; ``workers``
    is carried over as-is.
    """
    series = flatten_numeric(doc.get("results", {}), "results")
    if doc.get("workers") is not None:
        series["workers"] = float(doc["workers"])
    return series


def summarize_metrics(doc: dict) -> Dict[str, float]:
    """The comparable series of a ``repro.obs.metrics/v1`` snapshot.

    Counters and gauges map through unchanged; histograms contribute
    ``<name>.count``, ``<name>.sum``, ``<name>.mean``, and ``<name>.max``.
    """
    series: Dict[str, float] = {}
    for name, value in doc.get("counters", {}).items():
        series[name] = float(value)
    for name, value in doc.get("gauges", {}).items():
        series[name] = float(value)
    for name, hist in doc.get("histograms", {}).items():
        count = hist.get("count", 0)
        series[f"{name}.count"] = float(count)
        series[f"{name}.sum"] = float(hist.get("sum", 0.0))
        if count:
            series[f"{name}.mean"] = float(hist["sum"]) / count
        if hist.get("max") is not None:
            series[f"{name}.max"] = float(hist["max"])
    return series


def summarize_trace(trace: Union[Trace, dict]) -> Dict[str, float]:
    """The comparable series of a trace: total plus top-level span times."""
    if isinstance(trace, dict):
        trace = read_trace(trace)
    series = {"trace.total_seconds": trace.total_seconds}
    for span in trace.spans:
        series[f"trace.span.{span.name}.seconds"] = span.seconds
    return series


@dataclass
class RunRecord:
    """One history line: who ran, on which code, and the numbers it left."""

    run_id: str
    name: str
    created_at: Optional[str] = None
    git: Optional[dict] = None
    workers: Optional[int] = None
    series: Dict[str, float] = field(default_factory=dict)
    documents: Dict[str, Any] = field(default_factory=dict)

    @property
    def git_sha(self) -> Optional[str]:
        """The recorded git SHA, or None when the run had no repository."""
        return (self.git or {}).get("sha")

    @property
    def git_dirty(self) -> Optional[bool]:
        """The recorded dirty flag (None when unknown)."""
        return (self.git or {}).get("dirty")

    def to_dict(self) -> dict:
        """The record as a ``repro.obs.history/v1`` JSON object."""
        doc = {
            "schema": HISTORY_SCHEMA,
            "run_id": self.run_id,
            "name": self.name,
            "series": dict(self.series),
        }
        if self.created_at is not None:
            doc["created_at"] = self.created_at
        if self.git is not None:
            doc["git"] = dict(self.git)
        if self.workers is not None:
            doc["workers"] = self.workers
        if self.documents:
            doc["documents"] = dict(self.documents)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "RunRecord":
        """Rebuild a record from its JSON object form."""
        if doc.get("schema") != HISTORY_SCHEMA:
            raise ValueError(
                f"not a history record (schema={doc.get('schema')!r})"
            )
        return cls(
            run_id=doc["run_id"],
            name=doc["name"],
            created_at=doc.get("created_at"),
            git=doc.get("git"),
            workers=doc.get("workers"),
            series={k: float(v) for k, v in doc.get("series", {}).items()},
            documents=dict(doc.get("documents", {})),
        )

    @classmethod
    def from_artifacts(cls, manifest: Optional[dict] = None,
                       metrics: Optional[dict] = None,
                       trace: Union[None, Trace, dict] = None,
                       extra_series: Optional[Dict[str, float]] = None,
                       documents: Optional[Dict[str, Any]] = None,
                       ) -> "RunRecord":
        """Build one record from a run's standard artefact documents.

        ``manifest`` supplies identity (run id, name, git, workers) and the
        ``results.*`` series; ``metrics`` and ``trace`` add their summaries
        (see :func:`summarize_metrics` / :func:`summarize_trace`);
        ``extra_series`` and ``documents`` are merged in last.
        """
        manifest = manifest or {}
        series: Dict[str, float] = {}
        series.update(summarize_manifest(manifest))
        if metrics is not None:
            series.update(summarize_metrics(metrics))
        if trace is not None:
            series.update(summarize_trace(trace))
        if extra_series:
            series.update({k: float(v) for k, v in extra_series.items()})
        return cls(
            run_id=manifest.get("run_id", "unknown"),
            name=manifest.get("name", "unnamed"),
            created_at=manifest.get("created_at"),
            git=manifest.get("git"),
            workers=manifest.get("workers"),
            series=series,
            documents=dict(documents or {}),
        )


def load_run_record(source: Union[str, dict]) -> RunRecord:
    """Coerce any run-shaped document into a :class:`RunRecord`.

    Accepts a history record, a run manifest, or a metrics snapshot —
    as a dict, JSON text, or a path.  A path ending in ``.jsonl`` is read
    as a history store and its *last* record is returned.
    """
    if isinstance(source, str) and source.endswith(".jsonl"):
        records = RunHistory(source).records()
        if not records:
            raise ValueError(f"history store {source!r} is empty")
        return records[-1]
    from .trace import _load_document

    doc = _load_document(source)
    schema = doc.get("schema")
    if schema == HISTORY_SCHEMA:
        return RunRecord.from_dict(doc)
    if schema == MANIFEST_SCHEMA:
        return RunRecord.from_artifacts(manifest=doc)
    if schema == METRICS_SCHEMA:
        return RunRecord(run_id=doc.get("run_id", "unknown"),
                         name="metrics", series=summarize_metrics(doc))
    if schema in (TRACE_SCHEMA, TRACE_SCHEMA_V1):
        trace = read_trace(doc)
        return RunRecord(run_id=trace.run_id or "unknown", name=trace.name,
                         series=summarize_trace(trace))
    raise ValueError(f"cannot interpret schema {schema!r} as a run record")


class RunHistory:
    """An append-only JSON-lines store of :class:`RunRecord` lines.

    The store is a plain file: appends are one ``write`` of one line (safe
    to interleave from sequential CI jobs), reads tolerate corrupt or
    foreign lines (skipped and counted, never fatal), and
    :meth:`compact` rewrites the file atomically for retention.
    """

    def __init__(self, path: str):
        self.path = str(path)
        #: Unparseable lines skipped by the most recent :meth:`records` call.
        self.corrupt_lines = 0

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------
    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (creating the store and its directory)."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record

    # ------------------------------------------------------------------
    def records(self) -> List[RunRecord]:
        """Every parseable record, in file (append) order.

        A missing store reads as empty; lines that fail to parse or that
        carry a foreign schema are skipped and counted in
        :attr:`corrupt_lines`.
        """
        out: List[RunRecord] = []
        self.corrupt_lines = 0
        if not os.path.exists(self.path):
            return out
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(RunRecord.from_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
        return out

    def query(self, name: Optional[str] = None,
              sha: Optional[str] = None,
              limit: Optional[int] = None) -> List[RunRecord]:
        """Records filtered by run ``name`` and/or git ``sha``.

        ``limit`` keeps only the most recent matches (file order is append
        order, so the tail is the newest).
        """
        matches = [
            r for r in self.records()
            if (name is None or r.name == name)
            and (sha is None or r.git_sha == sha)
        ]
        if limit is not None:
            matches = matches[-limit:]
        return matches

    def last(self, n: int = 1, name: Optional[str] = None) -> List[RunRecord]:
        """The most recent ``n`` records (optionally for one run name)."""
        return self.query(name=name, limit=n)

    # ------------------------------------------------------------------
    def compact(self, keep_last: int = 50) -> int:
        """Retention: keep the newest ``keep_last`` records per run name.

        Rewrites the store atomically (temp file + rename) and returns the
        number of records dropped.  Corrupt lines are dropped too.
        """
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        records = self.records()
        kept_per_name: Dict[str, int] = {}
        keep: List[RunRecord] = []
        for record in reversed(records):
            count = kept_per_name.get(record.name, 0)
            if count < keep_last:
                kept_per_name[record.name] = count + 1
                keep.append(record)
        keep.reverse()
        dropped = len(records) - len(keep)
        if dropped == 0 and self.corrupt_lines == 0:
            return 0
        directory = os.path.dirname(self.path) or "."
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".jsonl")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in keep:
                    handle.write(json.dumps(record.to_dict(),
                                            sort_keys=True) + "\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        return dropped


def format_history_report(history: Union[RunHistory, str],
                          last: int = 10,
                          name: Optional[str] = None) -> str:
    """A one-line-per-run table of the most recent history records."""
    if not isinstance(history, RunHistory):
        history = RunHistory(history)
    records = history.last(last, name=name)
    if not records:
        return f"(history {history.path!r} has no matching records)"
    lines = [f"history {history.path!r}: showing {len(records)} most "
             f"recent record(s)"]
    for record in records:
        sha = (record.git_sha or "?")[:10]
        dirty = "*" if record.git_dirty else ""
        lines.append(
            f"  {record.run_id:>12s}  {record.name:<24s} "
            f"{sha}{dirty:<1s}  {len(record.series):3d} series"
            + (f"  [{', '.join(sorted(record.documents))}]"
               if record.documents else "")
        )
    if history.corrupt_lines:
        lines.append(f"  ({history.corrupt_lines} corrupt line(s) skipped)")
    return "\n".join(lines)
