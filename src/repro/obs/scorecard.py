"""Characterization-quality scorecards: is the *physics* still right?

Perf telemetry says how fast a run was; a **scorecard** (schema
``repro.obs.scorecard/v1``) says how *good* it was at the paper's own
job — detecting high-crosstalk pairs (Figure 3), tracking their daily
drift (Figure 4), and serializing them in the scheduler (Section 7).
Every characterization campaign or figure driver can leave one behind,
and because a scorecard flattens into history series
(:meth:`Scorecard.series`), physics regressions gate CI exactly like
perf regressions do.

Three constructors, all taking *plain data* (pair keys as iterables of
edges) so this module imports nothing outside :mod:`repro.obs` and every
layer can call it without cycles:

* :func:`campaign_scorecard` — measured vs hidden-ground-truth
  conditional-error detection: recall/precision over high-crosstalk
  pairs, plus coverage and cost counts;
* :func:`drift_scorecard` — per-day detection across simulated days and
  the **drift-tracking lag** (the longest consecutive streak of days any
  true high pair went undetected);
* :func:`schedule_audit_scorecard` — scheduler-decision audit:
  serializations *taken* vs *warranted* (candidate high-crosstalk pairs
  the solver saw), and fallbacks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Schema identifier stamped into every scorecard document.
SCORECARD_SCHEMA = "repro.obs.scorecard/v1"

#: A normalized pair key: the two gate edges, each sorted, then sorted.
PairKey = Tuple[Tuple[int, ...], ...]


def normalize_pair(pair: Iterable[Iterable[int]]) -> PairKey:
    """Canonical form of a gate pair, whatever container it arrives in.

    Accepts frozensets of edge tuples, lists of lists, etc.; returns a
    sorted tuple of sorted edge tuples so set algebra over pairs from
    different layers (reports, devices, JSON) just works.
    """
    return tuple(sorted(tuple(sorted(int(q) for q in edge))
                        for edge in pair))


def normalize_pairs(pairs: Iterable[Iterable[Iterable[int]]]
                    ) -> Tuple[PairKey, ...]:
    """Sorted, de-duplicated canonical forms of many pairs."""
    return tuple(sorted({normalize_pair(p) for p in pairs}))


@dataclass(frozen=True)
class DetectionQuality:
    """Detected-vs-truth confusion counts and the derived rates."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def recall(self) -> float:
        """Fraction of true pairs detected (1.0 when nothing was planted)."""
        planted = self.true_positives + self.false_negatives
        return self.true_positives / planted if planted else 1.0

    @property
    def precision(self) -> float:
        """Fraction of detections that are real (1.0 when none claimed)."""
        claimed = self.true_positives + self.false_positives
        return self.true_positives / claimed if claimed else 1.0

    def to_metrics(self, prefix: str = "") -> Dict[str, float]:
        """The counts and rates as flat series (optionally prefixed)."""
        dot = f"{prefix}." if prefix else ""
        return {
            f"{dot}true_positives": float(self.true_positives),
            f"{dot}false_positives": float(self.false_positives),
            f"{dot}false_negatives": float(self.false_negatives),
            f"{dot}recall": self.recall,
            f"{dot}precision": self.precision,
        }


def detection_quality(detected: Iterable, truth: Iterable) -> DetectionQuality:
    """Compare a detected pair set against the hidden ground truth."""
    detected_set = set(normalize_pairs(detected))
    truth_set = set(normalize_pairs(truth))
    return DetectionQuality(
        true_positives=len(detected_set & truth_set),
        false_positives=len(detected_set - truth_set),
        false_negatives=len(truth_set - detected_set),
    )


@dataclass
class Scorecard:
    """One domain-quality record (see module docstring).

    ``metrics`` is the flat, comparable surface (what history diffs see);
    ``details`` carries the non-numeric evidence (pair lists, per-day
    breakdowns) for humans and debugging.
    """

    kind: str
    name: str
    run_id: Optional[str] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, Any] = field(default_factory=dict)

    def series(self, prefix: str = "scorecard") -> Dict[str, float]:
        """The metrics as prefixed history series names."""
        dot = f"{prefix}." if prefix else ""
        return {f"{dot}{k}": float(v) for k, v in self.metrics.items()}

    def to_dict(self) -> dict:
        """The scorecard as a ``repro.obs.scorecard/v1`` document."""
        return {
            "schema": SCORECARD_SCHEMA,
            "kind": self.kind,
            "name": self.name,
            "run_id": self.run_id,
            "metrics": dict(self.metrics),
            "details": self.details,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The document as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "Scorecard":
        """Rebuild a scorecard from its document form (exact round-trip)."""
        if doc.get("schema") != SCORECARD_SCHEMA:
            raise ValueError(
                f"not a scorecard document (schema={doc.get('schema')!r})"
            )
        return cls(
            kind=doc["kind"],
            name=doc["name"],
            run_id=doc.get("run_id"),
            metrics={k: float(v) for k, v in doc.get("metrics", {}).items()},
            details=dict(doc.get("details", {})),
        )

    def format(self) -> str:
        """A one-screen rendering (used by the report CLI)."""
        lines = [f"scorecard [{self.kind}] {self.name!r}"
                 + (f"  (run {self.run_id})" if self.run_id else "")]
        if self.metrics:
            width = max(len(k) for k in self.metrics)
            for key in sorted(self.metrics):
                lines.append(f"  {key:<{width}s}  {self.metrics[key]:>12g}")
        for key in sorted(self.details):
            value = self.details[key]
            if isinstance(value, (list, tuple)) and len(value) > 4:
                lines.append(f"  {key}: [{len(value)} entries]")
            else:
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def campaign_scorecard(name: str, detected_pairs: Iterable,
                       truth_pairs: Iterable, *,
                       run_id: Optional[str] = None,
                       experiments: Optional[int] = None,
                       pairs_measured: Optional[int] = None,
                       stale_units: int = 0, missing_units: int = 0,
                       extra_metrics: Optional[Dict[str, float]] = None,
                       ) -> Scorecard:
    """Score one characterization campaign against hidden ground truth.

    ``detected_pairs`` is what the measured report classified as high
    crosstalk, ``truth_pairs`` the device's planted set (evaluation-only
    data — the compiler never sees it).  Coverage degradation and cost
    counts ride along so quality and cost diff together.
    """
    quality = detection_quality(detected_pairs, truth_pairs)
    metrics = quality.to_metrics()
    if experiments is not None:
        metrics["experiments"] = float(experiments)
    if pairs_measured is not None:
        metrics["pairs_measured"] = float(pairs_measured)
    metrics["coverage.stale"] = float(stale_units)
    metrics["coverage.missing"] = float(missing_units)
    if extra_metrics:
        metrics.update({k: float(v) for k, v in extra_metrics.items()})
    return Scorecard(
        kind="campaign", name=name, run_id=run_id, metrics=metrics,
        details={
            "detected_pairs": [list(map(list, p))
                               for p in normalize_pairs(detected_pairs)],
            "truth_pairs": [list(map(list, p))
                            for p in normalize_pairs(truth_pairs)],
        },
    )


@dataclass(frozen=True)
class DriftDay:
    """One simulated day's detection outcome for the drift scorecard."""

    day: int
    detected_pairs: Tuple[PairKey, ...]
    truth_pairs: Tuple[PairKey, ...]

    @classmethod
    def build(cls, day: int, detected: Iterable,
              truth: Iterable) -> "DriftDay":
        """Normalize raw pair containers into a :class:`DriftDay`."""
        return cls(day=day, detected_pairs=normalize_pairs(detected),
                   truth_pairs=normalize_pairs(truth))


def drift_scorecard(name: str, days: Sequence[DriftDay], *,
                    run_id: Optional[str] = None,
                    extra_metrics: Optional[Dict[str, float]] = None,
                    ) -> Scorecard:
    """Score drift tracking across simulated days (the Figure 4 regime).

    Pooled recall/precision aggregate every (day, pair) decision;
    ``drift_lag_days`` is the longest consecutive streak of days any
    single true pair went undetected (0 = the tracker never lost a pair,
    the paper's stability claim); ``stable_days_fraction`` is the share
    of days whose detected set matched the truth exactly.
    """
    if not days:
        raise ValueError("drift scorecard needs at least one day")
    tp = fp = fn = 0
    stable_days = 0
    miss_streak: Dict[PairKey, int] = {}
    worst_streak = 0
    per_day: List[dict] = []
    for entry in sorted(days, key=lambda d: d.day):
        detected = set(entry.detected_pairs)
        truth = set(entry.truth_pairs)
        tp += len(detected & truth)
        fp += len(detected - truth)
        fn += len(truth - detected)
        if detected == truth:
            stable_days += 1
        for pair in truth:
            if pair in detected:
                miss_streak[pair] = 0
            else:
                miss_streak[pair] = miss_streak.get(pair, 0) + 1
                worst_streak = max(worst_streak, miss_streak[pair])
        per_day.append({
            "day": entry.day,
            "detected": len(detected),
            "truth": len(truth),
            "missed": len(truth - detected),
            "spurious": len(detected - truth),
        })
    quality = DetectionQuality(tp, fp, fn)
    metrics = quality.to_metrics()
    metrics.update({
        "days": float(len(days)),
        "drift_lag_days": float(worst_streak),
        "stable_days_fraction": stable_days / len(days),
    })
    if extra_metrics:
        metrics.update({k: float(v) for k, v in extra_metrics.items()})
    return Scorecard(kind="drift", name=name, run_id=run_id,
                     metrics=metrics, details={"per_day": per_day})


def fleet_scorecard(name: str, device_days: Dict[str, Sequence[DriftDay]],
                    *, quarantined: int = 0,
                    run_id: Optional[str] = None,
                    extra_metrics: Optional[Dict[str, float]] = None,
                    ) -> Scorecard:
    """Aggregate drift-tracking quality across a fleet of devices.

    ``device_days`` maps device name → that device's
    :class:`DriftDay` sequence (the same inputs
    :func:`drift_scorecard` takes for one device).  Pooled
    recall/precision count every (device, day, pair) decision;
    ``drift_lag_days`` is the *worst* per-device lag — one device losing
    a pair for a week is a fleet problem no average should hide — while
    ``stable_days_fraction`` averages across devices.  ``quarantined``
    rides along so history diffs notice when the fleet starts parking
    devices it used to measure.
    """
    graded = {dev: days_ for dev, days_ in device_days.items() if days_}
    if not graded:
        raise ValueError("fleet scorecard needs at least one graded device")
    tp = fp = fn = 0
    worst_lag = 0.0
    stable_sum = 0.0
    per_device: Dict[str, Dict[str, float]] = {}
    for dev in sorted(graded):
        card = drift_scorecard(f"{name}[{dev}]", graded[dev])
        m = card.metrics
        tp += int(m["true_positives"])
        fp += int(m["false_positives"])
        fn += int(m["false_negatives"])
        worst_lag = max(worst_lag, m["drift_lag_days"])
        stable_sum += m["stable_days_fraction"]
        per_device[dev] = {
            key: m[key] for key in (
                "recall", "precision", "drift_lag_days",
                "stable_days_fraction",
            )
        }
    metrics = DetectionQuality(tp, fp, fn).to_metrics()
    metrics.update({
        "devices": float(len(device_days)),
        "quarantined": float(quarantined),
        "drift_lag_days": worst_lag,
        "stable_days_fraction": stable_sum / len(graded),
    })
    if extra_metrics:
        metrics.update({k: float(v) for k, v in extra_metrics.items()})
    return Scorecard(kind="fleet", name=name, run_id=run_id,
                     metrics=metrics, details={"per_device": per_device})


def schedule_audit_scorecard(name: str, *, serializations_taken: int,
                             serializations_warranted: int,
                             fallbacks: int = 0,
                             run_id: Optional[str] = None,
                             strategy: Optional[str] = None,
                             extra_metrics: Optional[Dict[str, float]] = None,
                             ) -> Scorecard:
    """Audit the scheduler's serialization decisions for one workload.

    ``serializations_warranted`` counts the candidate pairs the solver
    was allowed to serialize (DAG-concurrent, high-crosstalk);
    ``serializations_taken`` how many it actually serialized.  The ratio
    is the solver's appetite — a drop to zero on a workload that used to
    serialize is exactly the silent physics regression this exists to
    catch.

    ``strategy`` names how the schedule was produced (``"monolithic"``,
    ``"windowed"``, ``"portfolio"``): decomposed and raced schedules are
    graded by exactly the same taken/warranted arithmetic as monolithic
    ones, so the strategy rides along as detail (and a ``strategy_code``
    metric so history diffs see strategy flips), never as a different
    grading rule.
    """
    warranted = max(0, serializations_warranted)
    taken = max(0, serializations_taken)
    metrics = {
        "serializations_taken": float(taken),
        "serializations_warranted": float(warranted),
        "serialization_rate": (taken / warranted) if warranted else 1.0,
        "fallbacks": float(fallbacks),
    }
    details: Dict[str, Any] = {}
    if strategy is not None:
        details["strategy"] = strategy
        codes = {"monolithic": 0.0, "windowed": 1.0, "portfolio": 2.0}
        if strategy in codes:
            metrics["strategy_code"] = codes[strategy]
    if extra_metrics:
        metrics.update({k: float(v) for k, v in extra_metrics.items()})
    return Scorecard(kind="schedule", name=name, run_id=run_id,
                     metrics=metrics, details=details)


def format_scorecard_report(doc: dict) -> str:
    """Render a ``repro.obs.scorecard/v1`` document (for the report CLI)."""
    return Scorecard.from_dict(doc).format()
