"""The live plane: one context manager wiring the whole telemetry loop.

Entering a :class:`LivePlane`

* creates (or adopts) a :class:`~repro.obs.live.bus.TelemetryBus` and
  tees :func:`~repro.obs.events.log_event` (via a
  :class:`~repro.obs.live.bus.BusEventSink`) and every span close (via
  :func:`~repro.obs.trace.add_span_observer`) onto it;
* activates a :class:`~repro.obs.live.heartbeat.HeartbeatBoard`, so the
  parallel engine, campaign, fleet controller, and SMT solver start
  beating progress;
* starts a :class:`~repro.obs.live.snapshot.SnapshotPublisher` sampling
  the metrics registry every ``interval`` seconds (plus on-demand
  :meth:`tick` samples), evaluating the plane's
  :class:`~repro.obs.live.alerts.AlertEngine` per snapshot and emitting
  ``obs.alert`` events on firing/resolved transitions;
* when ``directory`` is given, streams snapshots to
  ``<directory>/snapshots.jsonl`` (readable mid-run with
  ``python -m repro.obs tail --follow``) and writes a final Prometheus
  exposition to ``<directory>/metrics.prom`` on exit.

Exiting stops the thread, publishes one final snapshot, detaches every
tee, and writes the exposition.  The plane is a pure side-channel
observer: it reads the registry/board and writes only telemetry
artifacts, so a seeded run produces bitwise-identical results with the
plane on or off — the property the fleet soak's identity checks pin.

The innermost active plane is reachable through :func:`get_plane`; the
fleet controller uses that to publish one snapshot per tick without
taking a dependency on how (or whether) the plane was configured.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional

from ..events import install_sink, remove_sink
from ..trace import Span, add_span_observer, remove_span_observer
from .alerts import AlertEngine, AlertRule
from .bus import BusEventSink, TelemetryBus
from .export import write_prometheus
from .heartbeat import HeartbeatBoard, activate_board, deactivate_board
from .snapshot import SnapshotPublisher, SnapshotWriter

#: Stream file name under the plane's directory.
SNAPSHOT_FILE = "snapshots.jsonl"
#: Exposition file name under the plane's directory.
PROMETHEUS_FILE = "metrics.prom"

_PLANES: List["LivePlane"] = []
_PLANE_LOCK = threading.Lock()


def get_plane() -> Optional["LivePlane"]:
    """The innermost active :class:`LivePlane`, or None."""
    with _PLANE_LOCK:
        return _PLANES[-1] if _PLANES else None


class LivePlane:
    """Bundle of bus + heartbeats + publisher + alerting (module docstring).

    Parameters
    ----------
    directory:
        Where to stream ``snapshots.jsonl`` and write ``metrics.prom``;
        None keeps everything in memory (bus subscribers only).
    interval:
        Background sampling period in seconds; 0 disables the thread
        (snapshots then only happen on :meth:`tick`).
    rules:
        :class:`AlertRule` list evaluated per snapshot (default none).
    source:
        Stamped into every snapshot's ``source`` field.
    poll_interval:
        Liveness-beat period for blocked harvest loops (see
        :func:`repro.obs.live.heartbeat.poll_interval`).
    """

    def __init__(self, directory: Optional[str] = None, *,
                 interval: float = 0.5,
                 rules: Optional[List[AlertRule]] = None,
                 source: str = "live", bus: Optional[TelemetryBus] = None,
                 capacity: int = 2048, poll_interval: float = 1.0):
        self.directory = str(directory) if directory is not None else None
        self.bus = bus if bus is not None else TelemetryBus(capacity=capacity)
        self.board = HeartbeatBoard(poll_interval=poll_interval)
        self.alerts = AlertEngine(list(rules or []))
        self._writer: Optional[SnapshotWriter] = None
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            self._writer = SnapshotWriter(self.snapshot_path)
        self.publisher = SnapshotPublisher(
            bus=self.bus, board=self.board, alerts=self.alerts,
            writer=self._writer, interval=interval, source=source,
        )
        self._event_sink = BusEventSink(self.bus)
        self._span_observer = self._on_span_close
        self._entered = False

    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> Optional[str]:
        """Path of the snapshot JSONL stream (None when memory-only)."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, SNAPSHOT_FILE)

    @property
    def prometheus_path(self) -> Optional[str]:
        """Path of the Prometheus exposition (None when memory-only)."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, PROMETHEUS_FILE)

    def _on_span_close(self, record: Span) -> None:
        self.bus.publish("span", {
            "name": record.name,
            "seconds": record.seconds,
            "counters": dict(record.counters),
        })

    # ------------------------------------------------------------------
    def __enter__(self) -> "LivePlane":
        if self._entered:
            raise RuntimeError("LivePlane is not re-entrant")
        self._entered = True
        with _PLANE_LOCK:
            _PLANES.append(self)
        activate_board(self.board)
        install_sink(self._event_sink)
        add_span_observer(self._span_observer)
        self.publisher.start()
        return self

    def tick(self) -> dict:
        """Publish one snapshot now (the per-fleet-tick status stream)."""
        return self.publisher.publish()

    def __exit__(self, *exc) -> None:
        self.publisher.stop()
        try:
            # One final sample so short runs always leave at least one
            # snapshot and alert states see the end-of-run series.
            self.publisher.publish()
        finally:
            remove_span_observer(self._span_observer)
            remove_sink(self._event_sink)
            deactivate_board(self.board)
            with _PLANE_LOCK:
                if self in _PLANES:
                    _PLANES.remove(self)
            if self._writer is not None:
                self._writer.close()
            if self.prometheus_path is not None:
                write_prometheus(self.prometheus_path)
            self._entered = False


@contextmanager
def live_plane(directory: Optional[str] = None,
               **kwargs) -> Iterator[LivePlane]:
    """``with live_plane(dir, interval=0.2, rules=...) as plane: ...``"""
    plane = LivePlane(directory, **kwargs)
    with plane:
        yield plane
