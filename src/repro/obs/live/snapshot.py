"""Streaming snapshots: ``repro.obs.snapshot/v1`` documents, live.

A :class:`SnapshotPublisher` samples the process-wide
:class:`~repro.obs.registry.MetricsRegistry` — on a background-thread
interval, and on demand (:meth:`~SnapshotPublisher.publish`, which the
fleet controller calls once per tick) — into versioned snapshot
documents::

    {"schema": "repro.obs.snapshot/v1",
     "seq": 12,                      # per-publisher, monotonically inc.
     "ts": 1754640000.1, "uptime_seconds": 34.2,
     "source": "fleet-soak", "run_id": "...",   # when a session is open
     "series": {"fleet.ticks": 3.0, ...},       # flattened metrics
     "heartbeats": {"characterize[...].task": {...}},
     "alerts": {"firing": [...], "transitions": [...]}}

``series`` is :func:`repro.obs.history.summarize_metrics` over the
sampled snapshot, plus a ``<histogram>.p95`` per histogram (the
deterministic bucket-walk percentile), so alert rules and the ``top``
view read one flat namespace.  Snapshots are *samples of observers*:
building one reads the registry, the heartbeat board, and the alert
engine, and writes nothing any seeded computation consumes.

Each published document is teed to the plane's
:class:`~repro.obs.live.bus.TelemetryBus` (kind ``"snapshot"``),
appended to a :class:`SnapshotWriter` JSONL stream when configured, and
run through the :class:`~repro.obs.live.alerts.AlertEngine`; alert
transitions are emitted as ``obs.alert`` events.

:func:`tail_records` is the corrupt-tolerant live reader behind
``python -m repro.obs tail --follow``: it only parses complete lines
(a killed writer's torn tail stays buffered, never poisons the stream)
and counts skipped garbage on ``obs.events.corrupt_lines``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Iterator, List, Optional

from ..events import current_run_id, log_event
from ..history import summarize_metrics
from ..profile import histogram_percentile
from ..registry import get_registry
from .alerts import AlertEngine
from .bus import TelemetryBus
from .heartbeat import HeartbeatBoard

#: Schema identifier stamped into every snapshot document.
SNAPSHOT_SCHEMA = "repro.obs.snapshot/v1"


def build_series(metrics: dict) -> dict:
    """The flat series map of one metrics snapshot (plus p95s)."""
    series = summarize_metrics(metrics)
    for name, hist in metrics.get("histograms", {}).items():
        if hist.get("count"):
            series[f"{name}.p95"] = histogram_percentile(hist, 0.95)
    return series


class SnapshotWriter:
    """Append-only JSONL stream of snapshot documents."""

    def __init__(self, path: str):
        self.path = str(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, document: dict) -> None:
        """Write one document as a canonical JSON line and flush."""
        line = json.dumps(document, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Close the underlying handle (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_snapshots(path: str) -> List[dict]:
    """Every parseable snapshot document in a JSONL stream (tolerant)."""
    return [record for record in tail_records(path)
            if record.get("schema") == SNAPSHOT_SCHEMA]


def tail_records(path: str, *, follow: bool = False, poll: float = 0.2,
                 max_seconds: Optional[float] = None) -> Iterator[dict]:
    """Yield JSON records from a (possibly growing) JSONL file.

    Only complete lines are parsed: a torn tail (a writer killed
    mid-append) stays in the buffer until its newline arrives — or is
    counted as corrupt at EOF in non-follow mode.  Lines that fail to
    parse, or parse to a non-object, are skipped and counted on the
    ``obs.events.corrupt_lines`` counter.  With ``follow=True`` the
    iterator polls for growth every ``poll`` seconds until
    ``max_seconds`` elapses (forever when None).
    """
    deadline = (time.monotonic() + max_seconds
                if max_seconds is not None else None)
    corrupt = 0
    buffer = ""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            while True:
                chunk = handle.read()
                if chunk:
                    buffer += chunk
                    while "\n" in buffer:
                        line, buffer = buffer.split("\n", 1)
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except ValueError:
                            corrupt += 1
                            continue
                        if isinstance(record, dict):
                            yield record
                        else:
                            corrupt += 1
                    continue
                if not follow:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                time.sleep(poll)
        if buffer.strip():
            # A torn final line with no newline: incomplete, not data.
            corrupt += 1
    finally:
        if corrupt:
            get_registry().inc("obs.events.corrupt_lines", corrupt)


class SnapshotPublisher:
    """Periodic + on-demand snapshot publication (see module docstring).

    ``interval`` seconds between background samples (0 disables the
    thread; every snapshot is then an explicit :meth:`publish` call).
    The registry is resolved through :func:`get_registry` *at publish
    time*, so snapshots follow ``push_registry`` swaps the way the
    instrumented layers do.
    """

    def __init__(self, *, bus: TelemetryBus,
                 board: Optional[HeartbeatBoard] = None,
                 alerts: Optional[AlertEngine] = None,
                 writer: Optional[SnapshotWriter] = None,
                 interval: float = 0.5, source: str = "live"):
        self.bus = bus
        self.board = board
        self.alerts = alerts
        self.writer = writer
        self.interval = float(interval)
        self.source = source
        self._seq = 0
        self._started_ts = time.time()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background sampling thread (no-op when interval<=0)."""
        if self.interval <= 0 or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-snapshot", daemon=True,
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.publish()
            except Exception:
                # A failed sample must never take down the run; the next
                # interval tries again.
                pass

    def stop(self) -> None:
        """Stop the background thread (idempotent; waits briefly)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    def publish(self) -> dict:
        """Sample, evaluate alerts, write, and fan out one snapshot."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            registry = get_registry()
            now = time.time()
            document = {
                "schema": SNAPSHOT_SCHEMA,
                "seq": seq,
                "ts": now,
                "uptime_seconds": now - self._started_ts,
                "source": self.source,
                "run_id": current_run_id(),
                "series": build_series(registry.snapshot()),
                "heartbeats": (self.board.snapshot()
                               if self.board is not None else {}),
            }
            transitions: List[dict] = []
            if self.alerts is not None:
                transitions = self.alerts.evaluate(document)
                document["alerts"] = {
                    "firing": self.alerts.firing,
                    "transitions": transitions,
                }
            else:
                document["alerts"] = {"firing": [], "transitions": []}
            if self.writer is not None:
                self.writer.append(document)
            self.bus.publish("snapshot", document)
            registry.inc("obs.live.snapshots")
            for transition in transitions:
                registry.inc("obs.live.alerts")
                log_event("obs.alert", **transition)
        return document
