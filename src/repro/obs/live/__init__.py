"""Live telemetry plane: streaming snapshots, heartbeats, alerts.

``repro.obs.live`` layers real-time observability on the recorded
``repro.obs`` stack without touching any seeded computation:

* :mod:`~repro.obs.live.bus` — in-process :class:`TelemetryBus` with
  bounded subscriber rings and explicit drop accounting; never blocks
  the hot path.
* :mod:`~repro.obs.live.heartbeat` — worker/stage progress beats,
  recorded parent-side and merged into every snapshot.
* :mod:`~repro.obs.live.snapshot` — the versioned
  ``repro.obs.snapshot/v1`` stream: :class:`SnapshotPublisher`,
  append-only JSONL writing, and the corrupt-tolerant live reader
  behind ``python -m repro.obs tail``.
* :mod:`~repro.obs.live.alerts` — declarative threshold + sustain
  :class:`AlertRule` evaluation with a firing/resolved lifecycle,
  emitted as ``obs.alert`` events.
* :mod:`~repro.obs.live.export` — stdlib Prometheus text-format
  exposition plus the matching validator.
* :mod:`~repro.obs.live.plane` — :class:`LivePlane`, the one context
  manager that wires all of the above together.
"""

from .alerts import (
    AlertEngine,
    AlertRule,
    breaker_open_rule,
    budget_rule,
    default_fleet_rules,
    drift_lag_rule,
    queue_latency_rule,
    task_failure_rule,
)
from .bus import BusEventSink, Subscription, TelemetryBus
from .export import prometheus_exposition, validate_exposition, write_prometheus
from .heartbeat import (
    HeartbeatBoard,
    activate_board,
    deactivate_board,
    heartbeat,
    heartbeat_step,
    heartbeats_active,
    poll_interval,
)
from .plane import LivePlane, get_plane, live_plane
from .snapshot import (
    SNAPSHOT_SCHEMA,
    SnapshotPublisher,
    SnapshotWriter,
    build_series,
    read_snapshots,
    tail_records,
)

__all__ = [
    "AlertEngine",
    "AlertRule",
    "BusEventSink",
    "HeartbeatBoard",
    "LivePlane",
    "SNAPSHOT_SCHEMA",
    "SnapshotPublisher",
    "SnapshotWriter",
    "Subscription",
    "TelemetryBus",
    "activate_board",
    "breaker_open_rule",
    "budget_rule",
    "build_series",
    "deactivate_board",
    "default_fleet_rules",
    "drift_lag_rule",
    "get_plane",
    "heartbeat",
    "heartbeat_step",
    "heartbeats_active",
    "live_plane",
    "poll_interval",
    "prometheus_exposition",
    "queue_latency_rule",
    "read_snapshots",
    "tail_records",
    "task_failure_rule",
    "validate_exposition",
    "write_prometheus",
]
