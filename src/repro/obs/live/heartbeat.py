"""Worker progress heartbeats, merged live into snapshots.

A :class:`HeartbeatBoard` is a thread-safe map from a *source* name
(``"characterize[high_only].task"``, ``"campaign[high_only]"``,
``"fleet"``, ``"smt.solve"``) to its latest progress fields — task
counts, phase, free-form detail — plus a beat count and timestamp.  The
parallel engine beats it on task submit/harvest and while waiting on a
slow future (mid-map liveness), the campaign beats it per completed
experiment, the fleet controller per tick, and the SMT solver per solve;
the snapshot publisher folds the whole board into every
``repro.obs.snapshot/v1`` document, so a stalled map is visible *before*
any watchdog fires.

Beats are recorded in the **parent** process: the engine proxies its
workers (submit = task-start, harvest = task-done, poll timeout =
liveness).  That keeps worker processes untouched and makes dead-worker
telemetry trivially safe — a killed worker's task simply never harvests,
and the retry's beats overwrite the entry.

The module-level :func:`heartbeat` / :func:`heartbeat_step` are no-ops
unless a board is active (a :class:`~repro.obs.live.plane.LivePlane` is
entered), so the hot path pays one truthiness check when nobody is
watching — and seeded results are never perturbed either way, because
beats only ever write to the board and the metrics registry.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from ..registry import get_registry


class HeartbeatBoard:
    """Thread-safe latest-progress map, one entry per source."""

    def __init__(self, poll_interval: float = 1.0):
        #: How often (seconds) a blocked harvest loop should emit a
        #: liveness beat; the engine reads this via :func:`poll_interval`.
        self.poll_interval = float(poll_interval)
        self._lock = threading.Lock()
        self._entries: Dict[str, dict] = {}

    def beat(self, source: str, **fields) -> None:
        """Merge ``fields`` into the source's entry and stamp it."""
        with self._lock:
            entry = self._entries.setdefault(source, {"beats": 0})
            for key, value in fields.items():
                if value is not None:
                    entry[key] = value
            entry["beats"] += 1
            entry["ts"] = time.time()

    def step(self, source: str, field: str, amount: int = 1) -> None:
        """Increment a numeric field of the source's entry and stamp it."""
        with self._lock:
            entry = self._entries.setdefault(source, {"beats": 0})
            entry[field] = entry.get(field, 0) + amount
            entry["beats"] += 1
            entry["ts"] = time.time()

    def clear(self, source: str) -> None:
        """Drop the source's entry (no-op when absent)."""
        with self._lock:
            self._entries.pop(source, None)

    def snapshot(self) -> Dict[str, dict]:
        """A deep-enough copy of every entry (entries are flat dicts)."""
        with self._lock:
            return {name: dict(entry)
                    for name, entry in self._entries.items()}


# ----------------------------------------------------------------------
# the active boards (a stack: live planes may nest in tests)
# ----------------------------------------------------------------------
_BOARDS: List[HeartbeatBoard] = []
_BOARD_LOCK = threading.Lock()


def activate_board(board: HeartbeatBoard) -> None:
    """Start routing :func:`heartbeat` calls to ``board``."""
    with _BOARD_LOCK:
        _BOARDS.append(board)


def deactivate_board(board: HeartbeatBoard) -> None:
    """Stop routing beats to ``board`` (no-op if not active)."""
    with _BOARD_LOCK:
        if board in _BOARDS:
            _BOARDS.remove(board)


def heartbeats_active() -> bool:
    """True when at least one board is receiving beats."""
    return bool(_BOARDS)


def poll_interval() -> Optional[float]:
    """The liveness-poll interval for blocked waits, None when inactive.

    The parallel engine polls futures with this timeout (instead of
    blocking indefinitely) so it can beat the board while a slow or
    stalled task keeps it waiting.
    """
    if not _BOARDS:
        return None
    with _BOARD_LOCK:
        if not _BOARDS:
            return None
        return min(board.poll_interval for board in _BOARDS)


def heartbeat(source: str, **fields) -> None:
    """Beat every active board (no-op when none is active)."""
    if not _BOARDS:
        return
    with _BOARD_LOCK:
        boards = list(_BOARDS)
    for board in boards:
        board.beat(source, **fields)
    get_registry().inc("obs.live.heartbeats")


def heartbeat_step(source: str, field: str, amount: int = 1) -> None:
    """Increment ``field`` on every active board (no-op when none)."""
    if not _BOARDS:
        return
    with _BOARD_LOCK:
        boards = list(_BOARDS)
    for board in boards:
        board.step(source, field, amount)
    get_registry().inc("obs.live.heartbeats")
