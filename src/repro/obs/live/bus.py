"""The telemetry bus: bounded fan-out that never blocks the hot path.

A :class:`TelemetryBus` carries live telemetry records — events, closed
spans, heartbeats, snapshots — from the instrumented layers to any
number of subscribers (the snapshot publisher, a ``tail --follow``
reader, tests).  Design constraints, in order:

1. **Never block the hot path.**  ``publish`` takes one short lock per
   subscriber, appends to a bounded ring, and returns; no I/O, no
   waiting on slow readers.
2. **Explicit loss accounting.**  Each subscriber owns a bounded ring
   (``collections.deque(maxlen=...)``); when a slow subscriber's ring
   overflows, the oldest record is dropped and the drop is counted —
   per subscription, per bus, and on the process-wide
   ``obs.live.dropped`` counter.  Telemetry is lossy by contract;
   *silent* loss is not.
3. **No upward imports.**  The bus knows about plain dicts only; it is
   safe to publish to from any layer.

:class:`BusEventSink` adapts the bus to the
:func:`repro.obs.events.log_event` sink protocol (``.log`` plus a
``run_id`` attribute), which is how ``log_event`` tees into the live
plane without the events module knowing the bus exists.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from ..registry import get_registry

#: Default ring capacity per subscription.
DEFAULT_CAPACITY = 2048


class Subscription:
    """One subscriber's bounded ring over a :class:`TelemetryBus`."""

    def __init__(self, bus: "TelemetryBus", capacity: int,
                 kinds: Optional[frozenset] = None):
        self._bus = bus
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self.kinds = kinds
        #: Records dropped from this subscription's ring (overflow).
        self.dropped = 0

    def _offer(self, record: dict) -> None:
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
                self._bus._count_drop()
            self._ring.append(record)
            self._ready.notify_all()

    def poll(self, max_items: Optional[int] = None) -> List[dict]:
        """Drain up to ``max_items`` records (all, when None); no wait."""
        with self._lock:
            out = []
            while self._ring and (max_items is None or len(out) < max_items):
                out.append(self._ring.popleft())
            return out

    def wait(self, timeout: float = 1.0) -> bool:
        """Block until a record is available (True) or timeout (False)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while not self._ring:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._ready.wait(remaining)
            return True

    def close(self) -> None:
        """Detach from the bus (idempotent)."""
        self._bus.unsubscribe(self)


class TelemetryBus:
    """Thread-safe bounded fan-out of live telemetry records.

    Every published record is a plain dict wrapped in an envelope::

        {"kind": "event" | "span" | "heartbeat" | "snapshot" | ...,
         "ts": <unix seconds>, "record": {...}}

    Subscribers receive the envelope.  Publishing to a bus with no
    subscribers costs one counter increment and a list read.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("bus capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._subs: List[Subscription] = []
        #: Total records published through this bus.
        self.published = 0
        #: Total records dropped across every subscription ring.
        self.dropped = 0

    def _count_drop(self) -> None:
        # Called under a subscription lock; bus counters use their own.
        self.dropped += 1
        get_registry().inc("obs.live.dropped")

    def subscribe(self, capacity: Optional[int] = None,
                  kinds: Optional[Any] = None) -> Subscription:
        """A new subscription; ``kinds`` (iterable of str) filters
        envelopes to those kinds, None receives everything."""
        sub = Subscription(
            self, capacity or self.capacity,
            frozenset(kinds) if kinds is not None else None,
        )
        with self._lock:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach ``sub`` (no-op if already detached)."""
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)

    def publish(self, kind: str, record: Dict[str, Any]) -> None:
        """Fan one record out to every subscriber; never blocks."""
        with self._lock:
            subs = list(self._subs)
            self.published += 1
        get_registry().inc("obs.live.published")
        if not subs:
            return
        envelope = {"kind": kind, "ts": time.time(), "record": record}
        for sub in subs:
            if sub.kinds is not None and kind not in sub.kinds:
                continue
            sub._offer(envelope)


class BusEventSink:
    """Adapts a :class:`TelemetryBus` to the ``log_event`` sink protocol.

    Installed via :func:`repro.obs.events.install_sink`; every
    :func:`~repro.obs.events.log_event` call then tees a copy of the
    record onto the bus as an ``"event"`` envelope.  Carries no
    ``run_id`` of its own so it never shadows a session's sink in
    :func:`~repro.obs.events.current_run_id`.
    """

    run_id: Optional[str] = None

    def __init__(self, bus: TelemetryBus):
        self._bus = bus

    def log(self, event: str, **fields: Any) -> dict:
        """Tee one event record onto the bus (the sink protocol)."""
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        self._bus.publish("event", record)
        return record
