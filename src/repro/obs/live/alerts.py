"""Declarative alerting over snapshot series.

An :class:`AlertRule` is a threshold + sustain-window predicate over one
series of the ``repro.obs.snapshot/v1`` documents a
:class:`~repro.obs.live.snapshot.SnapshotPublisher` emits: *fire when
``series op threshold`` has held for ``sustain`` consecutive snapshots;
resolve when it has been back in bounds for ``resolve_sustain``*.  The
:class:`AlertEngine` evaluates every rule against each snapshot and
returns the state **transitions** — the publisher emits each one as an
``obs.alert`` event (``state="firing"`` / ``state="resolved"``), giving
alerts the standard firing/resolved lifecycle.

Rules are data, engines are pure state machines: evaluation never
touches the registry or the clock, so alerting is deterministic given a
snapshot sequence and trivially testable.  ``delta=True`` evaluates the
change since the previous snapshot instead of the level — how rates
(task failures per snapshot) are expressed over cumulative counters.

:func:`default_fleet_rules` is the mix the fleet soak runs with, one
rule per failure class the chaos harness injects: drift lag, open
breakers, task-failure rate, queue-latency p95, and budget exhaustion —
thresholds keyed to the crosstalk-instability taxonomy the drift model
follows (characterization older than ~2 days is stale data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

_OPS = {
    ">=": lambda value, threshold: value >= threshold,
    ">": lambda value, threshold: value > threshold,
    "<=": lambda value, threshold: value <= threshold,
    "<": lambda value, threshold: value < threshold,
    "==": lambda value, threshold: value == threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One threshold + sustain predicate over a snapshot series.

    ``series`` names an entry of the snapshot's ``series`` map (counters
    and gauges flatten to their dotted name; histograms contribute
    ``.count`` / ``.sum`` / ``.mean`` / ``.max`` / ``.p95``).  A snapshot
    missing the series leaves the rule's state untouched — instruments
    appear lazily, and absence of data is not evidence of health *or*
    failure.
    """

    name: str
    series: str
    threshold: float
    op: str = ">="
    sustain: int = 1
    resolve_sustain: int = 1
    #: Evaluate the change since the previous snapshot, not the level.
    delta: bool = False
    description: str = ""

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(
                f"alert rule {self.name!r}: unknown op {self.op!r} "
                f"(choose from {sorted(_OPS)})"
            )
        if self.sustain < 1 or self.resolve_sustain < 1:
            raise ValueError(
                f"alert rule {self.name!r}: sustain windows must be >= 1"
            )

    def breached(self, value: float) -> bool:
        """Does ``value`` violate this rule's predicate?"""
        return _OPS[self.op](value, self.threshold)


class _RuleState:
    __slots__ = ("rule", "firing", "breach_streak", "ok_streak",
                 "last_value", "fired", "resolved")

    def __init__(self, rule: AlertRule):
        self.rule = rule
        self.firing = False
        self.breach_streak = 0
        self.ok_streak = 0
        self.last_value: Optional[float] = None
        self.fired = 0
        self.resolved = 0


class AlertEngine:
    """Evaluates a rule set snapshot by snapshot (see module docstring)."""

    def __init__(self, rules: List[AlertRule]):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"alert rule names must be unique: {names}")
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState(rule) for rule in rules
        }

    @property
    def rules(self) -> List[AlertRule]:
        """The rule set this engine evaluates, in registration order."""
        return [state.rule for state in self._states.values()]

    @property
    def firing(self) -> List[str]:
        """Names of every currently-firing alert, sorted."""
        return sorted(name for name, state in self._states.items()
                      if state.firing)

    def evaluate(self, snapshot: dict) -> List[dict]:
        """Advance every rule against one snapshot; return transitions.

        Each transition is a plain record ready to be logged as an
        ``obs.alert`` event: alert name, series, observed value,
        threshold, op, ``state`` (``"firing"`` or ``"resolved"``), and
        the snapshot's ``seq``/``ts``.
        """
        series = snapshot.get("series", {})
        transitions: List[dict] = []
        for state in self._states.values():
            rule = state.rule
            raw = series.get(rule.series)
            if raw is None:
                continue
            value = float(raw)
            if rule.delta:
                previous = state.last_value
                state.last_value = value
                if previous is None:
                    continue
                value = value - previous
            if rule.breached(value):
                state.breach_streak += 1
                state.ok_streak = 0
            else:
                state.ok_streak += 1
                state.breach_streak = 0
            changed = None
            if not state.firing and state.breach_streak >= rule.sustain:
                state.firing = True
                state.fired += 1
                changed = "firing"
            elif state.firing and state.ok_streak >= rule.resolve_sustain:
                state.firing = False
                state.resolved += 1
                changed = "resolved"
            if changed is not None:
                transitions.append({
                    "alert": rule.name,
                    "state": changed,
                    "series": rule.series,
                    "value": value,
                    "threshold": rule.threshold,
                    "op": rule.op,
                    "delta": rule.delta,
                    "seq": snapshot.get("seq"),
                    "snapshot_ts": snapshot.get("ts"),
                    "description": rule.description,
                })
        return transitions

    def summary(self) -> dict:
        """Lifecycle counts per rule plus the currently-firing set."""
        return {
            "firing": self.firing,
            "rules": {
                name: {"fired": state.fired, "resolved": state.resolved,
                       "firing": state.firing}
                for name, state in sorted(self._states.items())
            },
        }


# ----------------------------------------------------------------------
# rule constructors for the built-in failure classes
# ----------------------------------------------------------------------
def drift_lag_rule(days: float = 2.0, sustain: int = 1) -> AlertRule:
    """Fire when the worst non-quarantined device's published epoch is
    ``days`` or more behind its source measurement."""
    return AlertRule(
        name="drift_lag", series="fleet.max_staleness",
        threshold=float(days), op=">=", sustain=sustain,
        description="published characterization is stale data",
    )


def breaker_open_rule(count: float = 1.0, sustain: int = 1) -> AlertRule:
    """Fire while ``count`` or more non-quarantined breakers are open."""
    return AlertRule(
        name="breaker_open", series="fleet.breakers_open",
        threshold=float(count), op=">=", sustain=sustain,
        description="a device is failing admission",
    )


def task_failure_rule(per_snapshot: float = 1.0,
                      sustain: int = 1) -> AlertRule:
    """Fire when terminal task failures grow by ``per_snapshot`` or more
    between consecutive snapshots."""
    return AlertRule(
        name="task_failures", series="resilience.task_failures",
        threshold=float(per_snapshot), op=">=", sustain=sustain, delta=True,
        description="tasks are exhausting their retries",
    )


def queue_latency_rule(p95_seconds: float = 5.0,
                       sustain: int = 2) -> AlertRule:
    """Fire when the pool's task queue-latency p95 exceeds the budget."""
    return AlertRule(
        name="queue_latency", series="parallel.task.queue_seconds.p95",
        threshold=float(p95_seconds), op=">", sustain=sustain,
        description="pool submission-to-start latency is excessive",
    )


def budget_rule(min_remaining: float = 0.0, sustain: int = 1) -> AlertRule:
    """Fire when the fleet's remaining daily budget reaches the floor
    (the gauge is only set on budgeted runs, so unbudgeted fleets never
    evaluate this rule)."""
    return AlertRule(
        name="budget_exhausted", series="fleet.budget_left",
        threshold=float(min_remaining), op="<=", sustain=sustain,
        description="daily experiment budget exhausted",
    )


def default_fleet_rules() -> List[AlertRule]:
    """The soak's rule mix: one rule per injected failure class."""
    return [
        drift_lag_rule(),
        breaker_open_rule(),
        task_failure_rule(),
        queue_latency_rule(),
        budget_rule(),
    ]
