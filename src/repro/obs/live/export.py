"""Prometheus text-format exposition of a metrics snapshot (stdlib only).

:func:`prometheus_exposition` renders a ``repro.obs.metrics/v1``
snapshot in the Prometheus text exposition format (version 0.0.4):
counters and gauges become single samples, histograms become the
standard ``_bucket{le=...}`` cumulative series plus ``_sum`` and
``_count``.  Dotted names sanitize to underscores; per-item bracket
names (``fleet.staleness[dev-0]``) become one metric family with an
``item`` label, which is exactly how a scrape wants a fleet rendered::

    # TYPE fleet_staleness gauge
    fleet_staleness{item="dev-0"} 0
    fleet_staleness{item="dev-1"} 2

:func:`validate_exposition` is the matching stdlib parser used by tests
and the CI obs-live smoke: it checks sample syntax, TYPE declarations,
histogram bucket monotonicity, and the terminal ``+Inf`` bucket, and
returns a list of problems (empty = parses clean).  No
``prometheus_client`` dependency on either side.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from ..registry import MetricsRegistry, get_registry

_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _prom_name(name: str) -> Tuple[str, Optional[str]]:
    """``fleet.staleness[dev-0]`` → ``("fleet_staleness", "dev-0")``."""
    item = None
    if name.endswith("]") and "[" in name:
        name, _, item = name.partition("[")
        item = item[:-1]
    sanitized = _NAME_SANITIZE_RE.sub("_", name)
    if not sanitized or not _METRIC_NAME_RE.match(sanitized):
        sanitized = f"_{sanitized}"
    return sanitized, item


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def prometheus_exposition(metrics: Optional[dict] = None,
                          registry: Optional[MetricsRegistry] = None) -> str:
    """Render a metrics snapshot (default: the process registry's)."""
    if metrics is None:
        metrics = (registry or get_registry()).snapshot()
    # family name -> (kind, [(item_label, payload)])
    families: Dict[str, Tuple[str, List[tuple]]] = {}

    def _add(kind: str, name: str, payload) -> None:
        family, item = _prom_name(name)
        entry = families.setdefault(family, (kind, []))
        if entry[0] != kind:
            # Two repro kinds collapsing onto one family name: keep both
            # by suffixing the later kind.
            family = f"{family}_{kind}"
            entry = families.setdefault(family, (kind, []))
        entry[1].append((item, payload))

    for name, value in metrics.get("counters", {}).items():
        _add("counter", name, value)
    for name, value in metrics.get("gauges", {}).items():
        _add("gauge", name, value)
    for name, hist in metrics.get("histograms", {}).items():
        _add("histogram", name, hist)

    lines: List[str] = []
    for family in sorted(families):
        kind, samples = families[family]
        lines.append(f"# TYPE {family} {kind}")
        for item, payload in samples:
            base_labels = (f'item="{_escape_label(item)}"'
                           if item is not None else "")
            if kind in ("counter", "gauge"):
                suffix = f"{{{base_labels}}}" if base_labels else ""
                lines.append(f"{family}{suffix} {_fmt(payload)}")
                continue
            cumulative = 0
            for bound, count in zip(payload["bounds"],
                                    payload["bucket_counts"]):
                cumulative += count
                labels = f'le="{_fmt(bound)}"'
                if base_labels:
                    labels = f"{base_labels},{labels}"
                lines.append(f"{family}_bucket{{{labels}}} {cumulative}")
            labels = 'le="+Inf"'
            if base_labels:
                labels = f'{base_labels},{labels}'
            lines.append(f"{family}_bucket{{{labels}}} {payload['count']}")
            suffix = f"{{{base_labels}}}" if base_labels else ""
            lines.append(f"{family}_sum{suffix} {_fmt(payload['sum'])}")
            lines.append(f"{family}_count{suffix} {payload['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: str, metrics: Optional[dict] = None,
                     registry: Optional[MetricsRegistry] = None) -> str:
    """Write the exposition to ``path``; returns the text written."""
    text = prometheus_exposition(metrics, registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def _parse_value(text: str) -> Optional[float]:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def validate_exposition(text: str) -> List[str]:
    """Problems with a text-format exposition (empty list = valid)."""
    problems: List[str] = []
    declared: Dict[str, str] = {}
    # histogram family -> item -> [(le, cumulative_count)]
    buckets: Dict[str, Dict[Optional[str], List[Tuple[float, float]]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            _, _, family, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                problems.append(
                    f"line {lineno}: unknown metric type {kind!r}"
                )
            if family in declared:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {family!r}"
                )
            declared[family] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels")
        labels: Dict[str, str] = {}
        if labels_text:
            for part in labels_text.split(","):
                part = part.strip()
                if not _LABEL_RE.match(part):
                    problems.append(
                        f"line {lineno}: malformed label {part!r}"
                    )
                    continue
                key, _, raw = part.partition("=")
                labels[key] = raw[1:-1]
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            )
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and declared.get(trimmed) == "histogram":
                family = trimmed
                break
        if family not in declared:
            problems.append(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
            continue
        if name.endswith("_bucket") and declared.get(family) == "histogram":
            le = _parse_value(labels.get("le", ""))
            if le is None:
                problems.append(f"line {lineno}: bucket without le label")
                continue
            buckets.setdefault(family, {}) \
                   .setdefault(labels.get("item"), []) \
                   .append((le, value))
    for family, by_item in sorted(buckets.items()):
        for item, series in sorted(by_item.items(),
                                   key=lambda pair: str(pair[0])):
            where = f"{family}" + (f"[{item}]" if item else "")
            if not series or not math.isinf(series[-1][0]):
                problems.append(f"{where}: bucket series must end at +Inf")
            counts = [count for _le, count in series]
            if any(b < a for a, b in zip(counts, counts[1:])):
                problems.append(
                    f"{where}: bucket counts must be non-decreasing"
                )
    return problems
