"""Noise-aware run diffing: classify every series as improved/regressed.

Given two runs — or one run against a window of history records — the
comparator classifies each shared series (a flat ``name → float`` map,
see :mod:`repro.obs.history`) as **improved**, **regressed**,
**unchanged**, or **indeterminate**, producing a ``repro.obs.diff/v1``
document, a rendered table, and a CI gate (nonzero exit when anything
regressed).

Noise model
-----------

Run timings are noisy, counters are not; the comparator handles both with
one rule.  Against a baseline *window* of ``n`` runs, each series gets a
tolerance band around the window **median**::

    threshold = max(rel · |median|, k · 1.4826 · MAD, abs_floor)

where MAD is the median absolute deviation (1.4826 makes it a consistent
sigma estimate for normal noise).  A two-run diff is the degenerate
window of one — MAD is zero, so the relative tolerance carries the band.
Counters that are identical run over run sit exactly on the median and
always classify as unchanged; a genuine 2x wall-time regression clears
any sane band.

Wall-clock series (any name containing ``seconds``) additionally get
``noise_floor_seconds`` as their absolute floor: a 25% relative band on a
0.1 s workload is only 25 ms — well inside scheduler jitter on a shared
CI runner — so sub-second deltas below the floor never gate.  Slowdowns
of anything that takes real time still clear it by orders of magnitude.

Direction
---------

Whether *up* is good depends on the series: ``*_seconds`` down is good,
``*.speedup`` up is good.  :func:`direction_of` encodes the naming
conventions of the metric registry (``docs/observability.md``); series
with no known direction classify as unchanged/indeterminate and never
trip the gate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .history import RunRecord

#: Schema identifier stamped into diff documents.
DIFF_SCHEMA = "repro.obs.diff/v1"

#: Normal-consistency factor turning a MAD into a sigma estimate.
MAD_SIGMA = 1.4826

#: Series-name suffixes where a *decrease* is an improvement.
LOWER_IS_BETTER = (
    "seconds", "_seconds", ".sum", ".mean", ".max", ".count_dropped",
    "failures", "retries", "fallbacks", "recreations", "corrupt_lines",
    "degraded_pairs", "false_positives", "false_negatives", "lag_days",
    "missing", "stale", "nodes_explored", "machine_hours", "executions",
    "experiments_planned", "imbalance",
)

#: Series-name suffixes where an *increase* is an improvement.
HIGHER_IS_BETTER = (
    "speedup", "recall", "precision", "f1", "accuracy", "hits",
    "deterministic_across_worker_counts", "exact",
)


def direction_of(name: str) -> int:
    """The improvement direction of a series name.

    Returns ``-1`` when lower is better, ``+1`` when higher is better,
    ``0`` when unknown (the series still diffs, but never gates).
    Higher-is-better suffixes win ties because they are the more specific
    convention (``….speedup`` vs the generic ``…seconds``).
    """
    for suffix in HIGHER_IS_BETTER:
        if name.endswith(suffix):
            return 1
    for suffix in LOWER_IS_BETTER:
        if name.endswith(suffix):
            return -1
    return 0


@dataclass(frozen=True)
class DiffThresholds:
    """The tolerance knobs of the comparator (see module docstring)."""

    #: Relative tolerance around the baseline median.
    rel: float = 0.25
    #: MAD multiplier (``k`` in the threshold formula).
    mad_scale: float = 4.0
    #: Absolute floor below which deltas are always noise.
    abs_floor: float = 1e-9
    #: Absolute floor for wall-clock series (name contains ``seconds``):
    #: deltas below this are scheduler jitter, never regressions.
    noise_floor_seconds: float = 0.05


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class SeriesDiff:
    """One series' comparison: baseline stats, candidate value, verdict."""

    name: str
    baseline: Optional[float]
    candidate: Optional[float]
    threshold: float = 0.0
    direction: int = 0
    window: int = 1
    #: ``improved`` / ``regressed`` / ``unchanged`` / ``indeterminate`` /
    #: ``added`` / ``removed``
    classification: str = "unchanged"

    @property
    def delta(self) -> Optional[float]:
        """``candidate - baseline`` (None when either side is missing)."""
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline

    @property
    def ratio(self) -> Optional[float]:
        """``candidate / baseline`` (None when undefined)."""
        if self.baseline is None or self.candidate is None:
            return None
        if self.baseline == 0.0:
            return None
        return self.candidate / self.baseline

    def to_dict(self) -> dict:
        """The series diff as a plain-JSON object."""
        return {
            "name": self.name,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "ratio": self.ratio,
            "threshold": self.threshold,
            "direction": self.direction,
            "window": self.window,
            "classification": self.classification,
        }


def diff_series(name: str, baseline_values: Sequence[float],
                candidate: Optional[float],
                thresholds: DiffThresholds = DiffThresholds()) -> SeriesDiff:
    """Classify one series against its baseline window.

    ``baseline_values`` is every baseline observation of the series (one
    per run in the window); ``candidate`` is the new run's value (or None
    when the new run dropped the series).
    """
    direction = direction_of(name)
    if not baseline_values:
        return SeriesDiff(name, None, candidate, direction=direction,
                          window=0, classification="added")
    median = _median(baseline_values)
    if candidate is None:
        return SeriesDiff(name, median, None, direction=direction,
                          window=len(baseline_values),
                          classification="removed")
    mad = _median([abs(v - median) for v in baseline_values])
    abs_floor = thresholds.abs_floor
    if "seconds" in name:
        abs_floor = max(abs_floor, thresholds.noise_floor_seconds)
    threshold = max(
        thresholds.rel * abs(median),
        thresholds.mad_scale * MAD_SIGMA * mad,
        abs_floor,
    )
    delta = candidate - median
    if abs(delta) <= threshold or not math.isfinite(delta):
        classification = "unchanged"
    elif direction == 0:
        classification = "indeterminate"
    elif delta * direction > 0:
        classification = "improved"
    else:
        classification = "regressed"
    return SeriesDiff(name, median, candidate, threshold=threshold,
                      direction=direction, window=len(baseline_values),
                      classification=classification)


@dataclass
class RunDiff:
    """The full comparison of one candidate run against its baseline."""

    baseline_name: str
    candidate_name: str
    series: List[SeriesDiff] = field(default_factory=list)
    thresholds: DiffThresholds = field(default_factory=DiffThresholds)

    def of(self, classification: str) -> List[SeriesDiff]:
        """Every series with the given classification."""
        return [s for s in self.series if s.classification == classification]

    @property
    def regressions(self) -> List[SeriesDiff]:
        """The series that regressed (what the gate fails on)."""
        return self.of("regressed")

    @property
    def improvements(self) -> List[SeriesDiff]:
        """The series that improved."""
        return self.of("improved")

    def summary(self) -> Dict[str, int]:
        """Classification → count over every compared series."""
        counts: Dict[str, int] = {}
        for s in self.series:
            counts[s.classification] = counts.get(s.classification, 0) + 1
        return counts

    def gate_exit_code(self) -> int:
        """The CI gate verdict: 0 when nothing regressed, else 2."""
        return 2 if self.regressions else 0

    def to_dict(self) -> dict:
        """The diff as a ``repro.obs.diff/v1`` document."""
        return {
            "schema": DIFF_SCHEMA,
            "baseline": self.baseline_name,
            "candidate": self.candidate_name,
            "thresholds": {
                "rel": self.thresholds.rel,
                "mad_scale": self.thresholds.mad_scale,
                "abs_floor": self.thresholds.abs_floor,
                "noise_floor_seconds": self.thresholds.noise_floor_seconds,
            },
            "summary": self.summary(),
            "series": [s.to_dict() for s in self.series],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The diff document as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def diff_records(baseline: Union[RunRecord, Sequence[RunRecord]],
                 candidate: RunRecord,
                 thresholds: DiffThresholds = DiffThresholds()) -> RunDiff:
    """Diff a candidate record against one record or a window of records.

    Every series appearing on either side is classified; series present
    only in the candidate are ``added``, series the candidate dropped are
    ``removed`` — both informational, neither gates.
    """
    if isinstance(baseline, RunRecord):
        window: List[RunRecord] = [baseline]
    else:
        window = list(baseline)
        if not window:
            raise ValueError("baseline window is empty")
    baseline_name = (window[0].name if len(window) == 1
                     else f"{window[-1].name} (median of {len(window)} runs)")
    names = sorted(
        set(candidate.series)
        | {n for record in window for n in record.series}
    )
    series = []
    for name in names:
        values = [r.series[name] for r in window if name in r.series]
        series.append(diff_series(
            name, values, candidate.series.get(name), thresholds,
        ))
    return RunDiff(
        baseline_name=baseline_name,
        candidate_name=candidate.name,
        series=series,
        thresholds=thresholds,
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
_MARKS = {"regressed": "✗", "improved": "✓", "indeterminate": "?",
          "added": "+", "removed": "-", "unchanged": " "}


def format_diff(diff: RunDiff, show_unchanged: bool = False) -> str:
    """The diff as a table: one row per (interesting) series.

    Unchanged series are summarized by count unless ``show_unchanged``.
    """
    lines = [f"diff: {diff.candidate_name!r} vs baseline "
             f"{diff.baseline_name!r}"]
    summary = diff.summary()
    lines.append("  " + "  ".join(
        f"{k}={summary[k]}" for k in sorted(summary)
    ))
    rows = [s for s in diff.series
            if show_unchanged or s.classification != "unchanged"]
    if rows:
        width = max(len(s.name) for s in rows)
        for s in rows:
            mark = _MARKS.get(s.classification, "?")
            base = "—" if s.baseline is None else f"{s.baseline:.6g}"
            cand = "—" if s.candidate is None else f"{s.candidate:.6g}"
            ratio = "" if s.ratio is None else f"  ({s.ratio:.2f}x)"
            lines.append(
                f"  {mark} {s.name:<{width}s}  {base:>12s} → {cand:>12s}"
                f"{ratio}  [{s.classification}]"
            )
    if not show_unchanged and summary.get("unchanged"):
        lines.append(f"  ({summary['unchanged']} series unchanged)")
    return "\n".join(lines)


def format_diff_report(doc: dict) -> str:
    """Render a ``repro.obs.diff/v1`` document (for the report CLI)."""
    thresholds = doc.get("thresholds", {})
    diff = RunDiff(
        baseline_name=doc.get("baseline", "?"),
        candidate_name=doc.get("candidate", "?"),
        series=[
            SeriesDiff(
                name=s["name"], baseline=s.get("baseline"),
                candidate=s.get("candidate"),
                threshold=s.get("threshold", 0.0),
                direction=s.get("direction", 0),
                window=s.get("window", 1),
                classification=s.get("classification", "unchanged"),
            )
            for s in doc.get("series", [])
        ],
        thresholds=DiffThresholds(
            rel=thresholds.get("rel", DiffThresholds.rel),
            mad_scale=thresholds.get("mad_scale", DiffThresholds.mad_scale),
            abs_floor=thresholds.get("abs_floor", DiffThresholds.abs_floor),
            noise_floor_seconds=thresholds.get(
                "noise_floor_seconds", DiffThresholds.noise_floor_seconds),
        ),
    )
    return format_diff(diff)
