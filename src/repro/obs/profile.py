"""Deterministic span-tree profiling: self/total attribution + flame data.

The ``repro.obs.trace/v2`` documents every run leaves behind are already
a wall-time tree; this module turns one into profiler-grade views without
re-running anything (so two profiles of the same trace are bit-identical):

* :func:`profile_trace` — per-span-name **self/total attribution**
  (:class:`TraceProfile`): total seconds (inclusive, summed over every
  occurrence), self seconds (total minus child time), and call counts;
* :func:`collapsed_stacks` — ``root;child;leaf <µs>`` lines, the
  flamegraph.pl / speedscope "collapsed" input format, weighted by self
  time in integer microseconds;
* :func:`speedscope_document` — an evented
  `speedscope <https://www.speedscope.app>`_ profile; child spans are laid
  out back-to-back from their parent's open, so the layout is a pure
  function of the trace.  :func:`validate_speedscope` checks a document
  against the embedded :data:`SPEEDSCOPE_SCHEMA`;
* :func:`fanout_skew` — p50/p95/max worker-imbalance statistics from the
  ``parallel.task.queue_seconds`` / ``parallel.task.exec_seconds``
  histograms a run's metrics snapshot carries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .trace import Span, Trace, read_trace

#: Schema identifier stamped into profile documents.
PROFILE_SCHEMA = "repro.obs.profile/v1"

#: The speedscope file-format schema URL (stamped into exports).
SPEEDSCOPE_SCHEMA_URL = "https://www.speedscope.app/file-format-schema.json"

#: A structural JSON schema for the subset of the speedscope file format
#: this module emits (evented profiles).  Used by
#: :func:`validate_speedscope`; mirrors the published schema at
#: :data:`SPEEDSCOPE_SCHEMA_URL`.
SPEEDSCOPE_SCHEMA: dict = {
    "type": "object",
    "required": ["$schema", "shared", "profiles"],
    "properties": {
        "$schema": {"type": "string"},
        "name": {"type": "string"},
        "activeProfileIndex": {"type": "number"},
        "exporter": {"type": "string"},
        "shared": {
            "type": "object",
            "required": ["frames"],
            "properties": {
                "frames": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["name"],
                        "properties": {"name": {"type": "string"}},
                    },
                },
            },
        },
        "profiles": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["type", "name", "unit", "startValue",
                             "endValue", "events"],
                "properties": {
                    "type": {"type": "string", "enum": ["evented"]},
                    "name": {"type": "string"},
                    "unit": {"type": "string",
                             "enum": ["seconds", "milliseconds",
                                      "microseconds", "nanoseconds"]},
                    "startValue": {"type": "number"},
                    "endValue": {"type": "number"},
                    "events": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["type", "frame", "at"],
                            "properties": {
                                "type": {"type": "string",
                                         "enum": ["O", "C"]},
                                "frame": {"type": "number"},
                                "at": {"type": "number"},
                            },
                        },
                    },
                },
            },
        },
    },
}


@dataclass
class SpanStat:
    """Aggregate timing of one span name across a trace."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Mean inclusive time per occurrence (0.0 when unseen)."""
        return self.total_seconds / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """The stat as a plain-JSON object."""
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "self_seconds": self.self_seconds,
        }


def _self_seconds(span: Span) -> float:
    """Span time not attributable to children (clamped at zero)."""
    return max(0.0, span.seconds - sum(c.seconds for c in span.children))


@dataclass
class TraceProfile:
    """Self/total attribution per span name for one trace."""

    name: str
    run_id: Optional[str] = None
    total_seconds: float = 0.0
    stats: Dict[str, SpanStat] = field(default_factory=dict)

    def ranked(self, by: str = "self") -> List[SpanStat]:
        """Stats sorted heaviest-first by ``self`` or ``total`` seconds."""
        if by not in ("self", "total"):
            raise ValueError("by must be 'self' or 'total'")
        key = (lambda s: (-s.self_seconds, s.name)) if by == "self" else \
            (lambda s: (-s.total_seconds, s.name))
        return sorted(self.stats.values(), key=key)

    def to_dict(self) -> dict:
        """The profile as a ``repro.obs.profile/v1`` document."""
        return {
            "schema": PROFILE_SCHEMA,
            "name": self.name,
            "run_id": self.run_id,
            "total_seconds": self.total_seconds,
            "spans": [s.to_dict() for s in self.ranked("self")],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TraceProfile":
        """Rebuild a profile from its document form."""
        if doc.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"not a profile document (schema={doc.get('schema')!r})"
            )
        profile = cls(
            name=doc.get("name", "?"), run_id=doc.get("run_id"),
            total_seconds=float(doc.get("total_seconds", 0.0)),
        )
        for stat in doc.get("spans", []):
            profile.stats[stat["name"]] = SpanStat(
                name=stat["name"], count=int(stat.get("count", 0)),
                total_seconds=float(stat.get("total_seconds", 0.0)),
                self_seconds=float(stat.get("self_seconds", 0.0)),
            )
        return profile

    def format(self, top_k: int = 15) -> str:
        """A ``self / total / count`` table, heaviest self time first."""
        lines = [f"profile {self.name!r}: "
                 f"{self.total_seconds * 1e3:.2f} ms total"
                 + (f"  (run {self.run_id})" if self.run_id else "")]
        shown = self.ranked("self")[:top_k]
        if not shown:
            return lines[0] + "\n  (no spans)"
        width = max(len(s.name) for s in shown)
        lines.append(f"  {'span':<{width}s}  {'self ms':>10s}  "
                     f"{'total ms':>10s}  {'count':>6s}  {'self %':>6s}")
        total = self.total_seconds or 1e-12
        for s in shown:
            lines.append(
                f"  {s.name:<{width}s}  {s.self_seconds * 1e3:>10.2f}  "
                f"{s.total_seconds * 1e3:>10.2f}  {s.count:>6d}  "
                f"{100.0 * s.self_seconds / total:>6.1f}"
            )
        return "\n".join(lines)


def profile_trace(source: Union[Trace, dict, str]) -> TraceProfile:
    """Aggregate a trace (object, document, JSON text, or path) into a
    :class:`TraceProfile` of per-span-name self/total attribution."""
    trace = source if isinstance(source, Trace) else read_trace(source)
    profile = TraceProfile(
        name=trace.name, run_id=trace.run_id,
        total_seconds=trace.total_seconds,
    )
    for span in trace.walk():
        stat = profile.stats.setdefault(span.name, SpanStat(span.name))
        stat.count += 1
        stat.total_seconds += span.seconds
        stat.self_seconds += _self_seconds(span)
    return profile


def format_profile_report(doc: dict) -> str:
    """Render a ``repro.obs.profile/v1`` document (for the report CLI)."""
    return TraceProfile.from_dict(doc).format()


# ----------------------------------------------------------------------
# collapsed stacks (flamegraph.pl / speedscope "collapsed" input)
# ----------------------------------------------------------------------
def collapsed_stacks(source: Union[Trace, dict, str]) -> str:
    """The trace as collapsed-stack lines weighted by self time.

    One line per unique root-to-span path: ``a;b;c 1234`` where the value
    is the path's summed *self* time in integer microseconds.  Zero-weight
    paths are kept only if they are leaves (so every span name appears).
    """
    trace = source if isinstance(source, Trace) else read_trace(source)
    weights: Dict[Tuple[str, ...], int] = {}

    def walk(span: Span, path: Tuple[str, ...]) -> None:
        here = path + (span.name,)
        micros = int(round(_self_seconds(span) * 1e6))
        if micros > 0 or not span.children:
            weights[here] = weights.get(here, 0) + micros
        for child in span.children:
            walk(child, here)

    for span in trace.spans:
        walk(span, ())
    return "\n".join(
        ";".join(path) + f" {weights[path]}" for path in sorted(weights)
    )


# ----------------------------------------------------------------------
# speedscope export
# ----------------------------------------------------------------------
def speedscope_document(source: Union[Trace, dict, str]) -> dict:
    """The trace as a speedscope *evented* profile document.

    Layout is deterministic: every span opens at a cursor that starts at
    its parent's open time, children are laid out back-to-back in tree
    order, and a span closes at ``max(open + seconds, last child close)``
    so nested timing noise can never produce unbalanced events.
    """
    trace = source if isinstance(source, Trace) else read_trace(source)
    frames: List[dict] = []
    frame_index: Dict[str, int] = {}

    def frame_of(name: str) -> int:
        if name not in frame_index:
            frame_index[name] = len(frames)
            frames.append({"name": name})
        return frame_index[name]

    events: List[dict] = []

    def emit(span: Span, at: float) -> float:
        frame = frame_of(span.name)
        events.append({"type": "O", "frame": frame, "at": at})
        cursor = at
        for child in span.children:
            cursor = emit(child, cursor)
        close = max(at + span.seconds, cursor)
        events.append({"type": "C", "frame": frame, "at": close})
        return close

    cursor = 0.0
    for span in trace.spans:
        cursor = emit(span, cursor)
    return {
        "$schema": SPEEDSCOPE_SCHEMA_URL,
        "name": trace.name,
        "exporter": "repro.obs.profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": trace.name,
            "unit": "seconds",
            "startValue": 0.0,
            "endValue": cursor,
            "events": events,
        }],
    }


def validate_speedscope(doc: dict) -> List[str]:
    """Validate a document against :data:`SPEEDSCOPE_SCHEMA`.

    Returns a list of violations (empty when the document conforms) —
    each a ``path: problem`` string.  Beyond the structural schema, the
    evented profiles are checked for balanced, monotonic open/close
    events.
    """
    problems: List[str] = []
    _validate_node(doc, SPEEDSCOPE_SCHEMA, "$", problems)
    for p, profile in enumerate(doc.get("profiles", [])):
        stack: List[int] = []
        last = float("-inf")
        for i, event in enumerate(profile.get("events", [])):
            at = event.get("at", 0.0)
            if at < last:
                problems.append(
                    f"$.profiles[{p}].events[{i}]: 'at' went backwards"
                )
            last = at
            if event.get("type") == "O":
                stack.append(event.get("frame"))
            elif event.get("type") == "C":
                if not stack or stack.pop() != event.get("frame"):
                    problems.append(
                        f"$.profiles[{p}].events[{i}]: unbalanced close"
                    )
        if stack:
            problems.append(f"$.profiles[{p}]: {len(stack)} unclosed frame(s)")
    return problems


def _validate_node(value, schema: dict, path: str,
                   problems: List[str]) -> None:
    """Recursive structural check for the JSON-schema subset we use
    (``type``, ``required``, ``properties``, ``items``, ``enum``)."""
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(value, dict):
            problems.append(f"{path}: expected object, got "
                            f"{type(value).__name__}")
            return
        for key in schema.get("required", []):
            if key not in value:
                problems.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                _validate_node(value[key], subschema, f"{path}.{key}",
                               problems)
    elif expected == "array":
        if not isinstance(value, list):
            problems.append(f"{path}: expected array, got "
                            f"{type(value).__name__}")
            return
        items = schema.get("items")
        if items:
            for i, element in enumerate(value):
                _validate_node(element, items, f"{path}[{i}]", problems)
    elif expected == "string":
        if not isinstance(value, str):
            problems.append(f"{path}: expected string")
        elif "enum" in schema and value not in schema["enum"]:
            problems.append(f"{path}: {value!r} not in {schema['enum']}")
    elif expected == "number":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append(f"{path}: expected number")


# ----------------------------------------------------------------------
# fan-out skew from per-task histograms
# ----------------------------------------------------------------------
def histogram_percentile(hist: dict, q: float) -> float:
    """The ``q``-quantile (0..1) of a bucketed histogram snapshot.

    Deterministic upper-bound estimate: walks the cumulative bucket
    counts and returns the first bucket's upper edge at or past the
    target rank (the overflow bucket reports the observed max).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    count = hist.get("count", 0)
    if not count:
        return 0.0
    target = q * count
    cumulative = 0
    for bound, bucket in zip(hist["bounds"], hist["bucket_counts"]):
        cumulative += bucket
        if cumulative >= target:
            return float(bound)
    return float(hist.get("max") or hist["bounds"][-1])


def fanout_skew(metrics_doc: dict,
                prefix: str = "parallel.task") -> Optional[dict]:
    """Worker-imbalance statistics from a run's per-task histograms.

    Reads the ``<prefix>.exec_seconds`` and ``<prefix>.queue_seconds``
    histograms of a ``repro.obs.metrics/v1`` snapshot and reports, per
    histogram, p50/p95/max/mean seconds — plus ``imbalance`` (max over
    mean exec seconds, 1.0 = perfectly even tasks).  Returns None when
    the run recorded no per-task histograms (serial runs).
    """
    histograms = metrics_doc.get("histograms", {})
    out: dict = {}
    for kind in ("exec", "queue"):
        hist = histograms.get(f"{prefix}.{kind}_seconds")
        if not hist or not hist.get("count"):
            continue
        mean = hist["sum"] / hist["count"]
        out[kind] = {
            "count": hist["count"],
            "mean_seconds": mean,
            "p50_seconds": histogram_percentile(hist, 0.50),
            "p95_seconds": histogram_percentile(hist, 0.95),
            "max_seconds": float(hist.get("max") or 0.0),
        }
    if "exec" not in out:
        return None
    mean = out["exec"]["mean_seconds"]
    out["imbalance"] = (out["exec"]["max_seconds"] / mean) if mean else 1.0
    return out
