"""Process-wide metrics: counters, gauges, and histograms with stable names.

A :class:`MetricsRegistry` owns three kinds of instruments, all addressed
by stable dotted names (``parallel.tasks``, ``smt.solve.seconds``,
``backend.trajectories``; the full name registry lives in
``docs/observability.md``):

* :class:`Counter` — a monotonically increasing total (``inc``);
* :class:`Gauge` — a level that can move either way (``set``);
* :class:`Histogram` — a distribution over fixed bucket bounds
  (``observe``), tracking count/sum/min/max plus per-bucket counts.

Registries are thread-safe (one lock around all map operations; the
instruments themselves take the same lock for updates) and serialize to a
plain-JSON snapshot (:meth:`MetricsRegistry.snapshot`, schema
``repro.obs.metrics/v1``).  Snapshots support :meth:`~MetricsRegistry.diff`
and :meth:`~MetricsRegistry.merge`, which is how metrics recorded inside
:mod:`repro.parallel` worker processes flow back: each task ships its
registry *delta* to the parent, and the parent merges it — so
``get_registry()`` reads the same totals no matter how many processes did
the work.

The process-wide default registry (:func:`get_registry`) is what the
instrumented layers write to; tests or embedders can swap it with
:func:`set_registry` / :func:`push_registry`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Schema identifier stamped into metric snapshot documents.
METRICS_SCHEMA = "repro.obs.metrics/v1"

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        """The current total."""
        with self._lock:
            return self.value


class Gauge:
    """A level: the most recent value set."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Replace the gauge's value (last write wins)."""
        with self._lock:
            self.value = float(value)

    def snapshot(self) -> float:
        """The most recently set value."""
        with self._lock:
            return self.value


class Histogram:
    """A distribution over fixed bucket upper bounds.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound.  Tracks count, sum, min, max.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum",
                 "min", "max", "_lock", "_windows")

    def __init__(self, name: str, lock: threading.RLock,
                 bounds: Sequence[float] = DEFAULT_BUCKETS,
                 windows: Optional[List["DeltaWindow"]] = None):
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock
        # The owning registry's list of open delta windows (shared, so a
        # window opened after this histogram exists still sees it).
        self._windows = windows if windows is not None else []

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for window in self._windows:
                window._note(self.name, value)

    @property
    def mean(self) -> float:
        """The running mean (0.0 when empty)."""
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """The histogram's accumulators as a plain-JSON dict."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "bucket_counts": list(self.bucket_counts),
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
            }


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Instruments are created on first use (``registry.counter(name)``) and
    are unique per name within their kind; asking for an existing name
    returns the same instrument.  One name may not be reused across kinds.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Open :class:`DeltaWindow` objects; histograms feed every open
        #: window so per-window extremes stay exact (see :meth:`diff`).
        self._windows: List["DeltaWindow"] = []

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def _check_name(self, name: str, kind: Dict) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ValueError(
                    f"metric name {name!r} already used by another kind"
                )

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            if name not in self._counters:
                self._check_name(name, self._counters)
                self._counters[name] = Counter(name, self._lock)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            if name not in self._gauges:
                self._check_name(name, self._gauges)
                self._gauges[name] = Gauge(name, self._lock)
            return self._gauges[name]

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            if name not in self._histograms:
                self._check_name(name, self._histograms)
                self._histograms[name] = Histogram(
                    name, self._lock, bounds, self._windows,
                )
            return self._histograms[name]

    # convenience one-liners for the instrumented layers
    def inc(self, name: str, amount: float = 1.0) -> None:
        """``counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        """``gauge(name).set(value)``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """``histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The whole registry as a plain-JSON ``repro.obs.metrics/v1`` doc."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "counters": {n: c.snapshot()
                             for n, c in self._counters.items()},
                "gauges": {n: g.snapshot() for n, g in self._gauges.items()},
                "histograms": {n: h.snapshot()
                               for n, h in self._histograms.items()},
            }

    def delta_window(self) -> "DeltaWindow":
        """Open a :class:`DeltaWindow` over this registry.

        The window records a baseline snapshot *and* the exact min/max of
        every histogram observation made while it is open, so
        :meth:`DeltaWindow.delta` produces a delta whose histogram
        extremes are those of the window itself — not the conservative
        cumulative bounds a bare :meth:`diff` of two snapshots is limited
        to.  This is what pool workers and sessions use, so merged parent
        histograms are exact.
        """
        return DeltaWindow(self)

    @staticmethod
    def diff(before: dict, after: dict) -> dict:
        """The delta snapshot ``after - before``.

        Counters and histogram accumulators subtract; gauges keep their
        ``after`` value (a gauge is a level, not an accumulator).  Used to
        ship per-task metric deltas out of pool workers.
        """
        out = {"schema": METRICS_SCHEMA, "counters": {}, "gauges": {},
               "histograms": {}}
        before_counters = before.get("counters", {})
        for name, value in after.get("counters", {}).items():
            delta = value - before_counters.get(name, 0.0)
            if delta:
                out["counters"][name] = delta
        out["gauges"] = dict(after.get("gauges", {}))
        before_hists = before.get("histograms", {})
        for name, hist in after.get("histograms", {}).items():
            prior = before_hists.get(name)
            if prior is None:
                out["histograms"][name] = dict(hist)
                continue
            counts = [a - b for a, b in zip(hist["bucket_counts"],
                                            prior["bucket_counts"])]
            count = hist["count"] - prior["count"]
            if count:
                out["histograms"][name] = {
                    "bounds": list(hist["bounds"]),
                    "bucket_counts": counts,
                    "count": count,
                    "sum": hist["sum"] - prior["sum"],
                    # Two cumulative snapshots only bound the window's
                    # extremes; a DeltaWindow (delta_window()) replaces
                    # these with the exact per-window min/max.
                    "min": hist["min"],
                    "max": hist["max"],
                }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (usually a :meth:`diff` delta) into this registry.

        Counters add, gauges take the incoming value, histograms add
        bucket counts and accumulators.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counter(name).inc(value)
            for name, value in snapshot.get("gauges", {}).items():
                self.gauge(name).set(value)
            for name, hist in snapshot.get("histograms", {}).items():
                target = self.histogram(name, hist["bounds"])
                if list(target.bounds) != list(hist["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ"
                    )
                for i, c in enumerate(hist["bucket_counts"]):
                    target.bucket_counts[i] += c
                target.count += hist["count"]
                target.sum += hist["sum"]
                for key in ("min", "max"):
                    value = hist.get(key)
                    if value is None:
                        continue
                    current = getattr(target, key)
                    if current is None:
                        setattr(target, key, value)
                    else:
                        pick = min if key == "min" else max
                        setattr(target, key, pick(current, value))

    def reset(self) -> None:
        """Drop every instrument (tests; not used by the library)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class DeltaWindow:
    """An open delta window over a registry (see ``delta_window()``).

    Captures a baseline snapshot at open and accumulates the exact
    min/max of every histogram observation made while open; ``delta()``
    is :meth:`MetricsRegistry.diff` with the histogram extremes replaced
    by the window's own.  Thread-safe: histogram observations note their
    value under the registry lock.  Close the window (``close()`` or use
    it as a context manager) when done — open windows cost one dict probe
    per observation.
    """

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self._extremes: Dict[str, List[float]] = {}
        self._closed = False
        with registry._lock:
            self.baseline = registry.snapshot()
            registry._windows.append(self)

    def _note(self, name: str, value: float) -> None:
        # Called by Histogram.observe under the registry lock.
        pair = self._extremes.get(name)
        if pair is None:
            self._extremes[name] = [value, value]
        else:
            if value < pair[0]:
                pair[0] = value
            if value > pair[1]:
                pair[1] = value

    def delta(self) -> dict:
        """The exact delta snapshot since the window opened."""
        with self._registry._lock:
            out = MetricsRegistry.diff(self.baseline,
                                       self._registry.snapshot())
            for name, hist in out.get("histograms", {}).items():
                pair = self._extremes.get(name)
                if pair is not None:
                    hist["min"], hist["max"] = pair[0], pair[1]
            return out

    def close(self) -> None:
        """Stop tracking (idempotent)."""
        with self._registry._lock:
            if not self._closed:
                self._closed = True
                if self in self._registry._windows:
                    self._registry._windows.remove(self)

    def __enter__(self) -> "DeltaWindow":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# the process-wide default registry
# ----------------------------------------------------------------------
_DEFAULT = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented layer writes to."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _DEFAULT
    with _REGISTRY_LOCK:
        previous = _DEFAULT
        _DEFAULT = registry
        return previous


@contextmanager
def push_registry(registry: Optional[MetricsRegistry] = None
                  ) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (default: a fresh one) as the
    process-wide registry.  Restores the previous registry on exit —
    the isolation hook tests and sessions use."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def metrics_snapshot() -> dict:
    """Snapshot of the process-wide registry."""
    return get_registry().snapshot()
