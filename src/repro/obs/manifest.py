"""Run manifests: what ran, with which config, seeds, workers, and code.

Every campaign or benchmark run should leave behind a *manifest* — a
small JSON document (schema ``repro.obs.manifest/v1``) that pins down
enough context to reproduce or audit the run:

* ``run_id`` — a random hex identifier shared with the run's trace,
  metrics snapshot, and event log;
* ``created_at`` — ISO-8601 UTC timestamp;
* ``config`` — the caller's configuration (any JSON-serializable dict);
* ``seeds`` — the seeds that fed the run's RNG streams;
* ``workers`` — the resolved :mod:`repro.parallel` worker count;
* ``git`` — the repository SHA (plus a dirty flag), when discoverable;
* ``environment`` — Python/numpy versions and platform;
* ``results`` — optional summary payload (headline numbers).

:class:`~repro.obs.session.Session` builds one automatically;
:func:`write_manifest` / :func:`read_manifest` round-trip it to disk.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import sys
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Schema identifier stamped into every manifest document.
MANIFEST_SCHEMA = "repro.obs.manifest/v1"


def new_run_id() -> str:
    """A fresh 12-hex-character run identifier."""
    return uuid.uuid4().hex[:12]


def git_revision(cwd: Optional[str] = None) -> Optional[dict]:
    """``{"sha": ..., "dirty": ...}`` for the enclosing git checkout,
    or None when git or the repository is unavailable."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        if sha.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"sha": sha.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return None


def environment_info() -> dict:
    """Interpreter and platform facts worth pinning in a manifest."""
    info = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "executable": sys.executable,
    }
    try:
        import numpy
        info["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep here
        pass
    workers = os.environ.get("REPRO_WORKERS")
    if workers is not None:
        info["REPRO_WORKERS"] = workers
    return info


@dataclass
class RunManifest:
    """One run's reproducibility record (see module docstring)."""

    run_id: str = field(default_factory=new_run_id)
    name: Optional[str] = None
    created_at: str = field(
        default_factory=lambda: datetime.datetime.now(
            datetime.timezone.utc).isoformat()
    )
    config: Dict[str, Any] = field(default_factory=dict)
    seeds: Dict[str, Any] = field(default_factory=dict)
    workers: Optional[int] = None
    git: Optional[dict] = None
    environment: Dict[str, Any] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def capture(cls, name: Optional[str] = None,
                config: Optional[dict] = None,
                seeds: Optional[dict] = None,
                workers: Optional[int] = None,
                results: Optional[dict] = None) -> "RunManifest":
        """A manifest pre-filled with git and environment facts."""
        return cls(
            name=name,
            config=dict(config or {}),
            seeds=dict(seeds or {}),
            workers=workers,
            git=git_revision(),
            environment=environment_info(),
            results=dict(results or {}),
        )

    def to_dict(self) -> dict:
        """The manifest as a ``repro.obs.manifest/v1`` document."""
        doc = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "config": self.config,
            "seeds": self.seeds,
            "workers": self.workers,
            "git": self.git,
            "environment": self.environment,
            "results": self.results,
        }
        if self.name is not None:
            doc["name"] = self.name
        return doc

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The document as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "RunManifest":
        """Rebuild a manifest from its document form."""
        if doc.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"not a manifest document (schema={doc.get('schema')!r})"
            )
        return cls(
            run_id=doc["run_id"],
            name=doc.get("name"),
            created_at=doc["created_at"],
            config=dict(doc.get("config", {})),
            seeds=dict(doc.get("seeds", {})),
            workers=doc.get("workers"),
            git=doc.get("git"),
            environment=dict(doc.get("environment", {})),
            results=dict(doc.get("results", {})),
        )


def write_manifest(manifest: RunManifest, path: str) -> None:
    """Write ``manifest`` to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(manifest.to_json(indent=2))
        handle.write("\n")


def read_manifest(path: str) -> RunManifest:
    """Read a manifest document back from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return RunManifest.from_dict(json.load(handle))
