"""Structured JSON-lines event logging with run IDs and fingerprints.

An *event* is one structured record of something that happened — a
campaign starting, a pipeline compiling a circuit, a solver falling back
to its greedy path.  Events are plain dicts serialized one-per-line
(JSON lines), each carrying:

* ``event`` — a stable dotted name (``campaign.start``,
  ``pipeline.compile``, ``smt.solve``; see ``docs/observability.md``);
* ``ts`` — wall-clock UNIX timestamp;
* ``run_id`` — the enclosing session's run ID, when a sink that has one
  is installed;
* any payload fields the caller attaches (device fingerprints, policy
  names, counts).

The library logs through the module-level :func:`log_event`, which is a
no-op unless a sink is installed — instrumentation therefore costs
nothing when nobody is listening.  :class:`EventLog` is the standard
sink: it buffers events in memory and can stream them to a file as
``events.jsonl`` (see :meth:`EventLog.write`).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

#: Schema identifier embedded in every event record.
EVENTS_SCHEMA = "repro.obs.events/v1"


class EventLog:
    """An in-memory, thread-safe buffer of structured events.

    ``run_id`` (optional) is stamped onto every event logged through this
    sink — a :class:`~repro.obs.session.Session` installs an EventLog
    carrying its own run ID.
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id
        self.events: List[dict] = []
        self._lock = threading.Lock()

    def log(self, event: str, **fields: Any) -> dict:
        """Record one event; returns the stored record."""
        record = {"event": event, "ts": time.time()}
        if self.run_id is not None:
            record["run_id"] = self.run_id
        record.update(fields)
        with self._lock:
            self.events.append(record)
        return record

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[dict]:
        return iter(list(self.events))

    def of(self, event: str) -> List[dict]:
        """Every recorded event with the given name."""
        with self._lock:
            return [e for e in self.events if e["event"] == event]

    def to_jsonl(self) -> str:
        """The buffer as JSON-lines text (one record per line)."""
        with self._lock:
            return "\n".join(json.dumps(e, sort_keys=True)
                             for e in self.events)

    def write(self, path: str) -> None:
        """Dump the buffer to ``path`` as an ``events.jsonl`` file."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
            if text:
                handle.write("\n")


def read_events(path: str, *, strict: bool = False) -> List[dict]:
    """Parse an ``events.jsonl`` file back into a list of records.

    Tolerates corrupt or torn lines the way ``obs.history`` does: a line
    that is not valid JSON, or not a JSON object (a writer killed
    mid-append leaves a torn tail), is skipped and counted on the
    process-wide ``obs.events.corrupt_lines`` counter — so a dead
    writer's file never poisons a live reader.  ``strict=True`` restores
    the historical raise-on-garbage behavior.
    """
    records = []
    corrupt = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if strict:
                    raise
                corrupt += 1
                continue
            if not isinstance(record, dict):
                if strict:
                    raise ValueError(
                        f"{path}: event line is not an object: {line[:80]!r}"
                    )
                corrupt += 1
                continue
            records.append(record)
    if corrupt:
        # Local import: this module stays import-free at the top level so
        # any layer can use it without cycles.
        from .registry import get_registry

        get_registry().inc("obs.events.corrupt_lines", corrupt)
    return records


# ----------------------------------------------------------------------
# the process-wide sink
# ----------------------------------------------------------------------
_SINKS: List[EventLog] = []
_SINK_LOCK = threading.Lock()


def install_sink(sink: EventLog) -> None:
    """Start routing :func:`log_event` calls to ``sink`` (stacking is
    allowed; every installed sink receives every event)."""
    with _SINK_LOCK:
        _SINKS.append(sink)


def remove_sink(sink: EventLog) -> None:
    """Stop routing events to ``sink`` (no-op if not installed)."""
    with _SINK_LOCK:
        if sink in _SINKS:
            _SINKS.remove(sink)


@contextmanager
def event_sink(sink: Optional[EventLog] = None) -> Iterator[EventLog]:
    """Install ``sink`` (default: a fresh :class:`EventLog`) for the
    duration of the block."""
    sink = sink if sink is not None else EventLog()
    install_sink(sink)
    try:
        yield sink
    finally:
        remove_sink(sink)


def current_run_id() -> Optional[str]:
    """The run ID of the most recently installed sink that carries one.

    Lets layers outside the session (checkpoints, resilience records) tie
    their artifacts to the enclosing run without threading the session
    object through every call; ``None`` when no run-scoped sink is
    installed.
    """
    with _SINK_LOCK:
        for sink in reversed(_SINKS):
            if sink.run_id is not None:
                return sink.run_id
    return None


def log_event(event: str, **fields: Any) -> None:
    """Log one structured event to every installed sink (no-op if none).

    This is what the instrumented layers call::

        log_event("campaign.start", policy="one_hop",
                  device=device_fingerprint(device))
    """
    if not _SINKS:
        return
    with _SINK_LOCK:
        sinks = list(_SINKS)
    for sink in sinks:
        sink.log(event, **fields)
