#!/usr/bin/env python3
"""Check markdown links and anchors across the documentation.

Scans markdown files for inline links ``[text](target)`` and verifies:

* relative file targets exist (``docs/api.md``, ``../DESIGN.md``);
* anchor targets (``file.md#section`` or ``#section``) match a heading
  in the target file, using GitHub's heading-slug rules;
* external (``http(s)://``, ``mailto:``) targets are skipped — CI must
  not depend on the network.

Usage::

    python tools/check_docs_links.py [files-or-dirs ...]

With no arguments, checks ``README.md`` and every ``*.md`` under
``docs/``. Exits nonzero listing every broken link. Stdlib only.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — text may contain nested ``[]`` one level deep
#: (images in links are not used here); target stops at the first
#: unescaped ``)``.
LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def strip_fenced_blocks(text: str) -> str:
    """Blank out fenced code blocks so links inside them are ignored."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (sans duplicate suffixes)."""
    text = heading.strip()
    # Unwrap markdown links and inline code/emphasis markers.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.replace("`", "").replace("*", "")
    text = text.lower()
    slug = "".join(ch for ch in text if ch.isalnum() or ch in " -_")
    return slug.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    """Every anchor GitHub would generate for ``path``'s headings."""
    slugs: set = set()
    counts: dict = {}
    for line in strip_fenced_blocks(
            path.read_text(encoding="utf-8")).splitlines():
        match = HEADING_RE.match(line)
        if not match:
            continue
        base = github_slug(match.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        slugs.add(base if n == 0 else f"{base}-{n}")
    return slugs


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every inline link."""
    text = strip_fenced_blocks(path.read_text(encoding="utf-8"))
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(2)


def check_file(path: Path) -> list:
    """All broken-link complaints for one markdown file."""
    problems = []
    for lineno, target in iter_links(path):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            dest = (path.parent / file_part).resolve()
            if not dest.exists():
                problems.append(
                    f"{path}:{lineno}: broken link target {target!r}"
                    f" (no such file {file_part!r})")
                continue
        else:
            dest = path
        if anchor:
            if dest.suffix.lower() != ".md":
                continue
            if anchor not in heading_slugs(dest):
                problems.append(
                    f"{path}:{lineno}: broken anchor {target!r}"
                    f" (no heading slug {anchor!r} in {dest.name})")
    return problems


def collect_files(args: list) -> list:
    if not args:
        files = [REPO_ROOT / "README.md"]
        files += sorted((REPO_ROOT / "docs").glob("*.md"))
        return files
    files = []
    for arg in args:
        path = Path(arg)
        if path.is_dir():
            files += sorted(path.rglob("*.md"))
        else:
            files.append(path)
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="markdown files or directories "
                             "(default: README.md + docs/)")
    args = parser.parse_args(argv)

    files = collect_files(args.paths)
    problems = []
    checked = 0
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        checked += 1
        problems += check_file(path)

    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"[check_docs_links] {checked} files checked, "
          f"{len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
