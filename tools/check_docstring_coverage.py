#!/usr/bin/env python3
"""Docstring-coverage gate for a package (default: ``src/repro/obs``).

Walks the package with :mod:`ast` and counts docstrings on modules,
classes, and public functions/methods (names not starting with ``_``;
dunders are excluded). Prints per-file coverage and fails if overall
coverage is below the threshold.

Usage::

    python tools/check_docstring_coverage.py [--min 100] [paths ...]

Stdlib only.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro" / "obs"


def is_public(name: str) -> bool:
    return not name.startswith("_")


def documentable_nodes(tree: ast.Module):
    """Yield ``(kind, qualified_name, node)`` for everything that should
    carry a docstring."""
    yield "module", "<module>", tree

    def walk(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if is_public(child.name):
                    qualname = f"{prefix}{child.name}"
                    yield "class", qualname, child
                    yield from walk(child, f"{qualname}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_public(child.name):
                    yield "function", f"{prefix}{child.name}", child

    yield from walk(tree, "")


def check_file(path: Path):
    """``(documented, missing)`` where missing lists qualified names."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    documented = 0
    missing = []
    for kind, name, node in documentable_nodes(tree):
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(f"{kind} {name}")
    return documented, missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        default=[DEFAULT_TARGET],
                        help=f"files or package dirs (default {DEFAULT_TARGET})")
    parser.add_argument("--min", type=float, default=100.0, metavar="PCT",
                        help="minimum coverage percentage (default 100)")
    args = parser.parse_args(argv)

    files = []
    for target in args.paths:
        if target.is_dir():
            files += sorted(target.rglob("*.py"))
        else:
            files.append(target)

    total = documented = 0
    failures = []
    for path in files:
        doc, missing = check_file(path)
        n = doc + len(missing)
        total += n
        documented += doc
        pct = 100.0 * doc / n if n else 100.0
        print(f"[docstrings] {path}: {doc}/{n} ({pct:.0f}%)")
        for item in missing:
            failures.append(f"{path}: missing docstring on {item}")

    coverage = 100.0 * documented / total if total else 100.0
    print(f"[docstrings] overall: {documented}/{total} ({coverage:.1f}%), "
          f"minimum {args.min:.1f}%")
    if coverage < args.min:
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
