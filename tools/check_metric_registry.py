#!/usr/bin/env python3
"""Lint: every metric/event name emitted in src/ is documented.

``docs/observability.md`` carries the name registry — the tables of
metric, span, and event names that make one run's artefacts comparable
with the next's.  This check keeps the registry honest: it scans
``src/**/*.py`` for string-literal names passed to the metric
instruments (``registry.inc/set/observe/counter/gauge/histogram``) and
to the event emitters (``log_event`` / ``EventLog.log``), and fails if
any emitted name does not appear in the docs.  Accessor reads
(``trace.counter(...)``, ``registry.gauge(...)``) are not emissions and
are ignored.

Names built with f-strings are reduced to their literal prefix up to the
first ``{`` (so ``f"fleet.staleness[{name}]"`` is satisfied by the
documented ``fleet.staleness[<device>]`` row).  Only dotted names are
considered — a plain word passed to some unrelated ``.set()`` is not a
metric.  Names that are deliberately undocumented can be listed in
``ALLOWED``.

Stdlib only; run from the repo root (CI docs job)::

    python tools/check_metric_registry.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
DOCS = REPO_ROOT / "docs" / "observability.md"

#: Names allowed to stay out of the docs registry (justify each entry).
ALLOWED: set = set()

#: Call sites whose first string-literal argument is a metric/event name.
#: Accessors like ``registry.counter(...)`` / ``trace.counter(...)`` are
#: excluded — they read; emission goes through inc/set/observe/log.
_CALL_RE = re.compile(
    r"(?:\.inc|\.set|\.observe|\blog_event|\.log)\(\s*"
    r"(?P<prefix>f?)(?P<quote>['\"])(?P<name>[^'\"\n]+)(?P=quote)"
)


def emitted_names(path: Path):
    """Yield ``(lineno, name, is_prefix)`` for every instrument call."""
    text = path.read_text(encoding="utf-8")
    for match in _CALL_RE.finditer(text):
        name = match.group("name")
        is_prefix = False
        if match.group("prefix"):
            # f-string: only the literal prefix is checkable.
            name = name.split("{", 1)[0]
            is_prefix = True
        if "." not in name:
            # Dotted names only: everything in the registry namespace is
            # `layer.metric`; bare words are other APIs' string args.
            continue
        if " " in name or not re.match(r"^[a-z0-9_.\[\]<>-]+$", name, re.I):
            continue
        lineno = text.count("\n", 0, match.start()) + 1
        yield lineno, name, is_prefix


def main() -> int:
    docs_text = DOCS.read_text(encoding="utf-8")
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, name, is_prefix in emitted_names(path):
            if name in ALLOWED:
                continue
            if name in docs_text:
                continue
            rel = path.relative_to(REPO_ROOT)
            kind = "name prefix" if is_prefix else "name"
            missing.append(f"{rel}:{lineno}: {kind} {name!r} not found in "
                           f"{DOCS.relative_to(REPO_ROOT)}")
    if missing:
        print(f"[check_metric_registry] {len(missing)} undocumented "
              "metric/event name(s):", file=sys.stderr)
        for line in missing:
            print(f"  {line}", file=sys.stderr)
        print("add the name(s) to the registry tables in "
              "docs/observability.md (or to ALLOWED in this script, with "
              "a reason)", file=sys.stderr)
        return 1
    print("[check_metric_registry] OK: every emitted metric/event name "
          "is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
